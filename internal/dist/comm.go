// Package dist is a small distributed-memory layer for the multi-node
// experiments: an in-process message fabric with MPI-like point-to-point
// and collective operations connecting simulated ranks, and the classic
// sort-last compositing algorithms of parallel visualization built on it
// — depth compositing for surface rendering and ordered alpha compositing
// for volume rendering. Each rank owns one z-slab of the data set (the
// decomposition mesh.SlabDecompose produces), renders only its own
// geometry, and the composite reconstructs the single-node image; the
// paper's Section III-A node-imbalance arguments are exercised on real
// per-rank workloads.
//
// The fabric is cancellable: the first rank error (or an external
// Comm.Cancel) closes a shared signal, and every Send, Recv, Barrier, and
// Gather blocked anywhere on the fabric unblocks with a typed *AbortError
// naming the originating rank — a failing rank can never strand its peers
// in a deadlock. See DESIGN.md ("The rank fabric and its fault model").
package dist

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// message is one typed payload on the fabric.
type message struct {
	tag  int
	data []float64
}

// ErrAborted is the sentinel matched by errors.Is for every operation
// that unblocked because the run was cancelled. The concrete error is
// always an *AbortError carrying the originating rank and cause.
var ErrAborted = errors.New("dist: run aborted")

// ErrStalled is wrapped by Send when Options.SendTimeout elapses with the
// (src, dst) pair buffer still full — the deadline-aware alternative to
// blocking forever against a wedged receiver.
var ErrStalled = errors.New("dist: send stalled")

// ExternalRank is the AbortError.Rank value for aborts that did not
// originate on a rank (Comm.Cancel).
const ExternalRank = -1

// AbortError reports that the run was cancelled: by the first rank to
// return an error, by a rank panic, or by Comm.Cancel. It satisfies
// errors.Is(err, ErrAborted) and unwraps to the cause.
type AbortError struct {
	// Rank is the originating rank, or ExternalRank for Comm.Cancel.
	Rank int
	// Err is the first error that triggered the abort.
	Err error
}

func (e *AbortError) Error() string {
	if e.Rank == ExternalRank {
		return fmt.Sprintf("dist: run aborted (external cancel): %v", e.Err)
	}
	return fmt.Sprintf("dist: run aborted by rank %d: %v", e.Rank, e.Err)
}

func (e *AbortError) Unwrap() error { return e.Err }

// Is makes every AbortError match the ErrAborted sentinel.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }

// TransientError marks its cause as retryable: a fault the caller may
// reasonably hope disappears on a re-run (the harness retries such cells
// with backoff before recording a failure).
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return "dist: transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether any error in err's chain is a
// *TransientError.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}

// DefaultBufferCap is the per-(src, dst) channel capacity when
// Options.BufferCap is zero.
const DefaultBufferCap = 16

// Options tunes a fabric. The zero value reproduces the defaults.
type Options struct {
	// BufferCap is the per-(src, dst) pair buffer capacity in messages.
	// Zero means DefaultBufferCap; negative means an unbuffered
	// (rendezvous) channel.
	BufferCap int
	// SendTimeout, when positive, bounds how long a Send may block on a
	// full pair buffer before failing with an error wrapping ErrStalled.
	// Zero sends block until delivery or abort.
	SendTimeout time.Duration
	// Fault injects deterministic faults for tests; nil is a clean fabric.
	Fault *FaultPlan
	// Tracer, when non-nil, records one span per rank operation —
	// "dist.send", "dist.recv", "dist.barrier", "dist.gather" — on rank
	// r's track (telemetry.WorkerTrack(r)), so a composite stalled on a
	// slow or wedged peer is visible as a long span on the blocked rank.
	// Create it with telemetry.New(rank count).
	Tracer *telemetry.Tracer
}

// Comm is an in-process fabric connecting Size ranks. Each (src, dst)
// pair has a buffered ordered channel, so sends match receives in program
// order like MPI's non-overtaking rule.
type Comm struct {
	size  int
	opts  Options
	chans [][]chan message

	// done is closed exactly once by the first abort; abortErr is written
	// before the close, so any reader that observed the close may read it.
	done      chan struct{}
	abortOnce sync.Once
	abortErr  *AbortError

	// Fault-injection counters: sends issued per rank, and the message
	// sequence per (src, dst) pair.
	sendOps []atomic.Int64
	pairSeq []atomic.Int64
}

// NewComm creates a fabric for n ranks with default options.
func NewComm(n int) (*Comm, error) { return NewCommWith(n, Options{}) }

// NewCommWith creates a fabric for n ranks with explicit options.
func NewCommWith(n int, opts Options) (*Comm, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: need at least one rank, got %d", n)
	}
	capacity := opts.BufferCap
	if capacity == 0 {
		capacity = DefaultBufferCap
	} else if capacity < 0 {
		capacity = 0
	}
	c := &Comm{
		size:    n,
		opts:    opts,
		chans:   make([][]chan message, n),
		done:    make(chan struct{}),
		sendOps: make([]atomic.Int64, n),
		pairSeq: make([]atomic.Int64, n*n),
	}
	for s := 0; s < n; s++ {
		c.chans[s] = make([]chan message, n)
		for d := 0; d < n; d++ {
			c.chans[s][d] = make(chan message, capacity)
		}
	}
	return c, nil
}

// Size returns the rank count.
func (c *Comm) Size() int { return c.size }

// abort records the first cause and releases every blocked operation.
func (c *Comm) abort(rank int, err error) {
	c.abortOnce.Do(func() {
		c.abortErr = &AbortError{Rank: rank, Err: err}
		fabricAborts.Inc(rank)
		close(c.done)
	})
}

// Cancel aborts the run from outside the rank bodies: every blocked
// operation unblocks with an *AbortError whose Rank is ExternalRank.
// Cancelling an already-aborted fabric is a no-op.
func (c *Comm) Cancel(cause error) {
	if cause == nil {
		cause = errors.New("cancelled")
	}
	c.abort(ExternalRank, cause)
}

// Err returns the *AbortError once the fabric is cancelled, nil before.
func (c *Comm) Err() error {
	select {
	case <-c.done:
		return c.abortErr
	default:
		return nil
	}
}

// Done is closed when the run aborts; rank bodies with long local phases
// can poll it to stop early.
func (c *Comm) Done() <-chan struct{} { return c.done }

// Run launches body once per rank on its own goroutine and waits for all
// of them. The first rank to return an error (or panic) cancels the
// fabric — peers blocked in Send/Recv/Barrier/Gather unblock with an
// *AbortError — and Run returns that typed error naming the rank.
func (c *Comm) Run(body func(ep *Endpoint) error) error {
	var wg sync.WaitGroup
	wg.Add(c.size)
	for r := 0; r < c.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					c.abort(rank, fmt.Errorf("panic: %v\n%s", p, debug.Stack()))
				}
			}()
			if err := body(&Endpoint{rank: rank, comm: c}); err != nil {
				c.abort(rank, err)
			}
		}(r)
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		return err
	}
	return nil
}

// Endpoint is one rank's handle on the fabric.
type Endpoint struct {
	rank int
	comm *Comm
}

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the fabric size.
func (e *Endpoint) Size() int { return e.comm.size }

// Send delivers a copy of data to dst with a tag. It blocks while the
// (src, dst) pair buffer is full and fails instead of deadlocking: with
// an *AbortError once the run is cancelled, or with an error wrapping
// ErrStalled when Options.SendTimeout elapses first. On a traced
// fabric (Options.Tracer) the operation records a span on this rank's
// track, as do Recv, Barrier, and Gather.
func (e *Endpoint) Send(dst, tag int, data []float64) error {
	tr := e.comm.opts.Tracer
	start := tr.Begin()
	err := e.send(dst, tag, data)
	tr.End(telemetry.WorkerTrack(e.rank), "dist.send", start)
	return err
}

func (e *Endpoint) send(dst, tag int, data []float64) error {
	c := e.comm
	if f := c.opts.Fault; f != nil {
		op := int(c.sendOps[e.rank].Add(1) - 1)
		seq := int(c.pairSeq[e.rank*c.size+dst].Add(1) - 1)
		drop, err := f.sendFault(e.rank, dst, tag, op, seq, c)
		if err != nil || drop {
			return err
		}
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	var timeout <-chan time.Time
	if c.opts.SendTimeout > 0 {
		t := time.NewTimer(c.opts.SendTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case c.chans[e.rank][dst] <- message{tag: tag, data: cp}:
		fabricSends.Inc(e.rank)
		fabricBytes.Add(e.rank, int64(8*len(cp)))
		return nil
	case <-c.done:
		return c.abortErr
	case <-timeout:
		fabricStalls.Inc(e.rank)
		return fmt.Errorf("dist: rank %d send to %d (tag %d) blocked > %v on a full buffer: %w",
			e.rank, dst, tag, c.opts.SendTimeout, ErrStalled)
	}
}

// Recv blocks for the next message from src and checks its tag. Once the
// run is cancelled it unblocks with the *AbortError instead of waiting on
// a sender that will never come.
func (e *Endpoint) Recv(src, tag int) ([]float64, error) {
	tr := e.comm.opts.Tracer
	start := tr.Begin()
	data, err := e.recv(src, tag)
	tr.End(telemetry.WorkerTrack(e.rank), "dist.recv", start)
	return data, err
}

func (e *Endpoint) recv(src, tag int) ([]float64, error) {
	c := e.comm
	select {
	case m := <-c.chans[src][e.rank]:
		if m.tag != tag {
			return nil, fmt.Errorf("dist: rank %d expected tag %d from %d, got %d", e.rank, tag, src, m.tag)
		}
		fabricRecvs.Inc(e.rank)
		return m.data, nil
	case <-c.done:
		return nil, c.abortErr
	}
}

// Gather collects each rank's slice on root (in rank order). Non-root
// ranks return (nil, nil) only on success; a failed contribution returns
// the send error. The root returns either the complete gather or
// (nil, err) — never a partial [][]float64 with nil holes — and a peer's
// abort propagates as the typed *AbortError.
func (e *Endpoint) Gather(root, tag int, data []float64) ([][]float64, error) {
	tr := e.comm.opts.Tracer
	start := tr.Begin()
	out, err := e.gather(root, tag, data)
	tr.End(telemetry.WorkerTrack(e.rank), "dist.gather", start)
	return out, err
}

func (e *Endpoint) gather(root, tag int, data []float64) ([][]float64, error) {
	if e.rank != root {
		if err := e.Send(root, tag, data); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]float64, e.comm.size)
	for r := 0; r < e.comm.size; r++ {
		if r == root {
			cp := make([]float64, len(data))
			copy(cp, data)
			out[r] = cp
			continue
		}
		d, err := e.Recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = d
	}
	return out, nil
}

// Barrier synchronizes all ranks (a root-coordinated two-phase barrier).
// A cancelled run releases every waiting rank with the *AbortError.
func (e *Endpoint) Barrier(tag int) error {
	tr := e.comm.opts.Tracer
	start := tr.Begin()
	err := e.barrier(tag)
	tr.End(telemetry.WorkerTrack(e.rank), "dist.barrier", start)
	return err
}

func (e *Endpoint) barrier(tag int) error {
	const root = 0
	if e.rank == root {
		for r := 1; r < e.comm.size; r++ {
			if _, err := e.Recv(r, tag); err != nil {
				return err
			}
		}
		for r := 1; r < e.comm.size; r++ {
			if err := e.Send(r, tag, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := e.Send(root, tag, nil); err != nil {
		return err
	}
	_, err := e.Recv(root, tag)
	return err
}
