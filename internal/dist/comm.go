// Package dist is a small distributed-memory layer for the multi-node
// experiments: an in-process message fabric with MPI-like point-to-point
// and collective operations connecting simulated ranks, and the classic
// sort-last compositing algorithms of parallel visualization built on it
// — depth compositing for surface rendering and ordered alpha compositing
// for volume rendering. Each rank owns one z-slab of the data set (the
// decomposition mesh.SlabDecompose produces), renders only its own
// geometry, and the composite reconstructs the single-node image; the
// paper's Section III-A node-imbalance arguments are exercised on real
// per-rank workloads.
package dist

import (
	"fmt"
	"sync"
)

// message is one typed payload on the fabric.
type message struct {
	tag  int
	data []float64
}

// Comm is an in-process fabric connecting Size ranks. Each (src, dst)
// pair has a buffered ordered channel, so sends match receives in program
// order like MPI's non-overtaking rule.
type Comm struct {
	size  int
	chans [][]chan message
	wg    sync.WaitGroup
}

// NewComm creates a fabric for n ranks.
func NewComm(n int) (*Comm, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: need at least one rank, got %d", n)
	}
	c := &Comm{size: n, chans: make([][]chan message, n)}
	for s := 0; s < n; s++ {
		c.chans[s] = make([]chan message, n)
		for d := 0; d < n; d++ {
			c.chans[s][d] = make(chan message, 16)
		}
	}
	return c, nil
}

// Size returns the rank count.
func (c *Comm) Size() int { return c.size }

// Run launches body once per rank on its own goroutine and waits for all
// of them. Any rank error aborts the whole run.
func (c *Comm) Run(body func(ep *Endpoint) error) error {
	errs := make([]error, c.size)
	c.wg.Add(c.size)
	for r := 0; r < c.size; r++ {
		go func(rank int) {
			defer c.wg.Done()
			errs[rank] = body(&Endpoint{rank: rank, comm: c})
		}(r)
	}
	c.wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: rank %d: %w", r, err)
		}
	}
	return nil
}

// Endpoint is one rank's handle on the fabric.
type Endpoint struct {
	rank int
	comm *Comm
}

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the fabric size.
func (e *Endpoint) Size() int { return e.comm.size }

// Send delivers a copy of data to dst with a tag.
func (e *Endpoint) Send(dst, tag int, data []float64) {
	cp := make([]float64, len(data))
	copy(cp, data)
	e.comm.chans[e.rank][dst] <- message{tag: tag, data: cp}
}

// Recv blocks for the next message from src and checks its tag.
func (e *Endpoint) Recv(src, tag int) ([]float64, error) {
	m := <-e.comm.chans[src][e.rank]
	if m.tag != tag {
		return nil, fmt.Errorf("dist: rank %d expected tag %d from %d, got %d", e.rank, tag, src, m.tag)
	}
	return m.data, nil
}

// Gather collects each rank's slice on root (in rank order); non-root
// ranks return nil.
func (e *Endpoint) Gather(root, tag int, data []float64) ([][]float64, error) {
	if e.rank != root {
		e.Send(root, tag, data)
		return nil, nil
	}
	out := make([][]float64, e.comm.size)
	for r := 0; r < e.comm.size; r++ {
		if r == root {
			cp := make([]float64, len(data))
			copy(cp, data)
			out[r] = cp
			continue
		}
		d, err := e.Recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = d
	}
	return out, nil
}

// Barrier synchronizes all ranks (a root-coordinated two-phase barrier).
func (e *Endpoint) Barrier(tag int) error {
	const root = 0
	if e.rank == root {
		for r := 1; r < e.comm.size; r++ {
			if _, err := e.Recv(r, tag); err != nil {
				return err
			}
		}
		for r := 1; r < e.comm.size; r++ {
			e.Send(r, tag, nil)
		}
		return nil
	}
	e.Send(root, tag, nil)
	_, err := e.Recv(root, tag)
	return err
}
