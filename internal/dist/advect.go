package dist

// Distributed parallelize-over-data particle advection on the rank
// fabric: the grid is block-decomposed into z-slabs with a ghost halo
// sized from the field's peak z-velocity, each rank advects its
// resident particles with the same fused-sampler SoA loop as
// advect.Run (the shared RK4/BS23 kernels over a
// mesh.BlockVectorSampler whose arithmetic is bit-identical to the
// whole-grid sampler), and particles whose cell layer leaves the
// owned range migrate to the owning rank in batched, length-prefixed
// SoA messages. Rank-local streamline segments carry (pid, seq) like
// the shared-memory arenas, so the final gather assembles a LineSet
// bit-identical to single-rank advect.Run regardless of rank count or
// migration interleaving. See DESIGN.md §11.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/mesh"
	"repro/internal/ops"
	"repro/internal/telemetry"
	"repro/internal/viz/advect"
)

// Round-indexed tag bases keep every migration batch and termination
// count bound to its BSP round: a dropped message surfaces as a tag
// mismatch or a watchdog abort, never as silent misdelivery.
const (
	advectTagMigrate = 1 << 20
	advectTagCount   = 2 << 20
	advectTagTotal   = 3 << 20
	advectTagSegs    = 4 << 20
)

// advectBurstSteps bounds one rank's per-round advance per particle,
// mirroring the shared-memory path's round length. Trajectories are a
// pure function of the migrating particle state, so burst boundaries
// (and therefore round counts) never affect the output bits.
const advectBurstSteps = 256

// advectWireFields is the per-particle field count of a migration
// message: px, py, pz, cell, pid, seq, steps, h, arc, prev.
const advectWireFields = 10

// AdvectOptions configures a distributed advection run.
type AdvectOptions struct {
	// Fabric tunes the rank fabric (buffering, send timeouts, fault
	// injection, tracing). BufferCap must be >= 0: the per-round
	// all-to-all migration exchange sends before receiving, which a
	// rendezvous fabric cannot complete.
	Fabric Options
	// MaxRounds bounds the BSP round count as a liveness backstop.
	// Zero derives NumSteps+8: every active particle accepts at least
	// one step per round (the adaptive hMin clamp guarantees
	// acceptance), so a clean run terminates well inside the bound.
	MaxRounds int
	// Deadline, when positive, arms a watchdog that cancels the fabric
	// after the given wall time, converting any stall — e.g. a dropped
	// migration message leaving a peer blocked — into a typed
	// *AbortError instead of a hang.
	Deadline time.Duration
	// Seeds overrides the filter's deterministic seed stream (tests
	// inject crafted and out-of-domain seeds through this).
	Seeds []mesh.Vec3
}

// AdvectRankStats is one rank's counters from a distributed advection
// run: the participation/ping-pong/overhead breakdown of the
// parallelize-over-data cost model.
type AdvectRankStats struct {
	Rank int
	// Seeded is the number of live particles initially owned.
	Seeded int
	// Steps is the number of accepted integration steps executed here.
	Steps uint64
	// Retired is the number of particles that terminated on this rank.
	Retired int
	// MigratedOut and MigratedIn count particles crossing block
	// boundaries in each direction.
	MigratedOut int
	MigratedIn  int
	// PingPong counts emigrants sent back to the rank they most
	// recently arrived from — the oscillation overhead of
	// parallelize-over-data advection.
	PingPong int
	// IdleNs is wall time blocked waiting on migration receives and
	// the termination collective.
	IdleNs int64
}

// AdvectResult is the output of a distributed advection run.
type AdvectResult struct {
	// Lines is the gathered streamline set, bit-identical to
	// single-rank advect.Run on the same grid and options.
	Lines *mesh.LineSet
	// Stats holds one entry per rank.
	Stats []AdvectRankStats
	// Rounds is the BSP round count to global termination.
	Rounds int
	// Ghost is the halo width (cell layers) each block carried.
	Ghost int
	// Profile is the merged per-rank operation profile.
	Profile ops.Profile
}

// rankSeg is one (particle, burst) streamline segment in a rank's
// arena: the distributed analogue of the shared-memory path's
// per-worker segment records.
type rankSeg struct {
	pid, seq int32
	off, n   int32
}

// advectRankState is one rank's working state: SoA resident particle
// arrays, the streamline arena, and operation counters. Batched
// reuse keeps the steady-state loop free of per-particle allocation.
type advectRankState struct {
	px, py, pz []float64
	cell       []int32 // last crossed cell id (fixed-step), -1 initially
	pid, seq   []int32
	steps      []int32 // accepted integration steps so far
	h, arc     []float64
	prev       []int32 // rank last migrated from, -1 initially
	mig        []int32 // migration destination this round, -1 resident
	dead       []bool
	n          int

	pts  []mesh.Vec3
	spd  []float64
	segs []rankSeg

	samples, crossings, stepsTaken, rejects uint64
}

func (st *advectRankState) add(px, py, pz float64, cell, pid, seq, steps int32, h, arc float64, prev int32) {
	st.px = append(st.px[:st.n], px)
	st.py = append(st.py[:st.n], py)
	st.pz = append(st.pz[:st.n], pz)
	st.cell = append(st.cell[:st.n], cell)
	st.pid = append(st.pid[:st.n], pid)
	st.seq = append(st.seq[:st.n], seq)
	st.steps = append(st.steps[:st.n], steps)
	st.h = append(st.h[:st.n], h)
	st.arc = append(st.arc[:st.n], arc)
	st.prev = append(st.prev[:st.n], prev)
	st.mig = append(st.mig[:st.n], -1)
	st.dead = append(st.dead[:st.n], false)
	st.n++
}

// encodeInto appends the emigrants idx as one length-prefixed SoA
// message into buf (reused across rounds): [count, px×c, py×c, pz×c,
// cell×c, pid×c, seq×c, steps×c, h×c, arc×c, prev×c]. Integer fields
// ride in float64 exactly (cell ids and counters stay far below 2^53).
func (st *advectRankState) encodeInto(buf []float64, idx []int, rank int32) []float64 {
	buf = append(buf[:0], float64(len(idx)))
	for _, i := range idx {
		buf = append(buf, st.px[i])
	}
	for _, i := range idx {
		buf = append(buf, st.py[i])
	}
	for _, i := range idx {
		buf = append(buf, st.pz[i])
	}
	for _, i := range idx {
		buf = append(buf, float64(st.cell[i]))
	}
	for _, i := range idx {
		buf = append(buf, float64(st.pid[i]))
	}
	for _, i := range idx {
		buf = append(buf, float64(st.seq[i]))
	}
	for _, i := range idx {
		buf = append(buf, float64(st.steps[i]))
	}
	for _, i := range idx {
		buf = append(buf, st.h[i])
	}
	for _, i := range idx {
		buf = append(buf, st.arc[i])
	}
	for range idx {
		buf = append(buf, float64(rank))
	}
	return buf
}

// ingest decodes one migration batch into the resident arrays.
func (st *advectRankState) ingest(data []float64, src int) (int, error) {
	if len(data) < 1 {
		return 0, fmt.Errorf("dist: advect migration batch from rank %d is empty", src)
	}
	c := int(data[0])
	if len(data) != 1+advectWireFields*c {
		return 0, fmt.Errorf("dist: advect migration batch from rank %d has %d floats, want %d for %d particles",
			src, len(data), 1+advectWireFields*c, c)
	}
	sec := func(k int) []float64 { return data[1+k*c : 1+(k+1)*c] }
	px, py, pz := sec(0), sec(1), sec(2)
	cell, pid, seq, steps := sec(3), sec(4), sec(5), sec(6)
	h, arc, prev := sec(7), sec(8), sec(9)
	for j := 0; j < c; j++ {
		st.add(px[j], py[j], pz[j], int32(cell[j]), int32(pid[j]), int32(seq[j]),
			int32(steps[j]), h[j], arc[j], int32(prev[j]))
	}
	return c, nil
}

// advectShared is the read-mostly state every rank body closes over,
// plus the per-rank output slots (each goroutine writes only its own
// index; the root alone writes lines/rounds).
type advectShared struct {
	g       *mesh.UniformGrid
	fo      advect.Options
	blocks  []mesh.Block
	owners  []int32
	starts  []mesh.Vec3
	perRank [][]int
	// deadSeeds is the out-of-domain seed count; adaptive mode charges
	// one crossing per dead seed on rank 0, as the oracle's arc-length
	// estimate does.
	deadSeeds int
	ghost     int
	maxRounds int
	tracer    *telemetry.Tracer

	stats []AdvectRankStats
	recs  []ops.Recorder

	lines  *mesh.LineSet
	rounds int
}

// Advect runs the particle-advection filter parallelized over data on
// nRanks fabric ranks and gathers a LineSet bit-identical to
// single-rank f.Run(g, ...) — same points, speeds, and offsets for
// both fixed-step RK4 and adaptive BS23 modes, at any rank count and
// under any migration interleaving (including fault-injected delays).
func Advect(g *mesh.UniformGrid, f *advect.Filter, nRanks int, opts AdvectOptions) (*AdvectResult, error) {
	fo := f.Options()
	field := g.PointVector(fo.Vector)
	if field == nil {
		return nil, fmt.Errorf("dist: grid has no point vector field %q", fo.Vector)
	}
	cd := g.CellDims()
	if nRanks < 1 || nRanks > cd[2] {
		return nil, fmt.Errorf("dist: cannot advect on %d ranks over %d cell layers", nRanks, cd[2])
	}
	if opts.Fabric.BufferCap < 0 {
		return nil, fmt.Errorf("dist: advect needs a buffered fabric (BufferCap >= 0): the all-to-all migration exchange sends before receiving")
	}

	// Ghost halo sized so every integration-stage probe of a particle
	// standing in an owned layer resolves locally: probes reach at most
	// max|v_z|·h past the position (step coefficients sum to one), with
	// the adaptive controller's hMax as the worst-case step.
	vzMax := 0.0
	for _, v := range field {
		if a := math.Abs(v[2]); a > vzMax {
			vzMax = a
		}
	}
	hEff := fo.StepLength
	if fo.Adaptive {
		_, hEff = advect.AdaptiveStepBounds(fo.StepLength)
	}
	ghost := int(vzMax*hEff/g.Spacing[2]) + 2

	blocks, err := mesh.BlockDecompose(g, nRanks, ghost)
	if err != nil {
		return nil, err
	}
	owners := make([]int32, cd[2])
	for r := range blocks {
		for k := blocks[r].K0; k < blocks[r].K1; k++ {
			owners[k] = int32(r)
		}
	}

	starts := opts.Seeds
	if starts == nil {
		starts = advect.SeedPoints(g.Bounds(), fo.NumParticles)
	}
	// The same out-of-domain predicate as Run and RunReference; live
	// seeds are assigned to the rank owning their cell layer by the
	// samplers' exact index arithmetic.
	deadSeed := advect.RejectSeeds(g, starts, nil)
	gs, err := mesh.NewVectorSampler(g, fo.Vector)
	if err != nil {
		return nil, err
	}
	perRank := make([][]int, nRanks)
	deadSeeds := 0
	for i := range starts {
		if deadSeed[i] {
			deadSeeds++
			continue
		}
		layer, ok := gs.CellLayer(starts[i])
		if !ok {
			deadSeeds++
			continue
		}
		r := owners[layer]
		perRank[r] = append(perRank[r], i)
	}

	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = fo.NumSteps + 8
	}

	comm, err := NewCommWith(nRanks, opts.Fabric)
	if err != nil {
		return nil, err
	}
	if opts.Deadline > 0 {
		watchdog := time.AfterFunc(opts.Deadline, func() {
			comm.Cancel(fmt.Errorf("advect deadline %v exceeded", opts.Deadline))
		})
		defer watchdog.Stop()
	}

	sh := &advectShared{
		g: g, fo: fo, blocks: blocks, owners: owners, starts: starts,
		perRank: perRank, deadSeeds: deadSeeds, ghost: ghost,
		maxRounds: maxRounds, tracer: opts.Fabric.Tracer,
		stats: make([]AdvectRankStats, nRanks),
		recs:  make([]ops.Recorder, nRanks),
	}
	for r := 0; r < nRanks; r++ {
		sh.tracer.SetTrackName(telemetry.WorkerTrack(r), fmt.Sprintf("rank %d", r))
	}

	if err := comm.Run(sh.rankBody); err != nil {
		return nil, err
	}
	return &AdvectResult{
		Lines:   sh.lines,
		Stats:   sh.stats,
		Rounds:  sh.rounds,
		Ghost:   sh.ghost,
		Profile: ops.Merge(sh.recs),
	}, nil
}

// rankBody is one rank's advection loop: BSP rounds of
// advance-burst / all-to-all migration exchange / termination count,
// then the final (pid, seq) segment gather on the root.
func (sh *advectShared) rankBody(ep *Endpoint) error {
	rank, size := ep.Rank(), ep.Size()
	rank32 := int32(rank)
	track := telemetry.WorkerTrack(rank)
	stats := &sh.stats[rank]
	stats.Rank = rank

	s, err := mesh.NewBlockVectorSampler(sh.blocks[rank], sh.fo.Vector)
	if err != nil {
		return err
	}

	nP := len(sh.starts)
	st := &advectRankState{
		px: make([]float64, 0, nP), py: make([]float64, 0, nP), pz: make([]float64, 0, nP),
		cell: make([]int32, 0, nP), pid: make([]int32, 0, nP), seq: make([]int32, 0, nP),
		steps: make([]int32, 0, nP), h: make([]float64, 0, nP), arc: make([]float64, 0, nP),
		prev: make([]int32, 0, nP), mig: make([]int32, 0, nP), dead: make([]bool, 0, nP),
	}
	for _, si := range sh.perRank[rank] {
		p := sh.starts[si]
		st.add(p[0], p[1], p[2], -1, int32(si), 0, 0, sh.fo.StepLength, 0, -1)
	}
	stats.Seeded = st.n
	if rank == 0 && sh.fo.Adaptive {
		// Dead seeds: the oracle's arc-length estimate charges one
		// crossing each; the root carries them for the merged profile.
		st.crossings += uint64(sh.deadSeeds)
	}

	sendBufs := make([][]float64, size)
	outIdx := make([][]int, size)
	var idle time.Duration

	terminated := false
	rounds := 0
	for round := 0; round < sh.maxRounds; round++ {
		rounds = round + 1
		if rank == 0 {
			sh.recs[0].Launch()
		}

		t0 := sh.tracer.Begin()
		if sh.fo.Adaptive {
			for i := 0; i < st.n; i++ {
				sh.burstAdaptive(st, s, i, rank32)
			}
		} else {
			for i := 0; i < st.n; i++ {
				sh.burstFixed(st, s, i, rank32)
			}
		}
		if s.Escaped() {
			return fmt.Errorf("dist: advect probe escaped rank %d block storage: ghost halo %d too thin for the step length", rank, sh.ghost)
		}
		sh.tracer.End(track, "advect.advance", t0)

		// Bucket emigrants (indices reference pre-compaction slots, so
		// encode before compacting), then drop dead and departed.
		t1 := sh.tracer.Begin()
		for d := 0; d < size; d++ {
			outIdx[d] = outIdx[d][:0]
		}
		for i := 0; i < st.n; i++ {
			if st.dead[i] {
				stats.Retired++
				continue
			}
			if dst := st.mig[i]; dst >= 0 {
				outIdx[dst] = append(outIdx[dst], i)
				stats.MigratedOut++
				if st.prev[i] == dst {
					stats.PingPong++
				}
			}
		}
		for dst := 0; dst < size; dst++ {
			if dst == rank {
				continue
			}
			sendBufs[dst] = st.encodeInto(sendBufs[dst], outIdx[dst], rank32)
			if err := ep.Send(dst, advectTagMigrate+round, sendBufs[dst]); err != nil {
				return err
			}
		}
		w := 0
		for i := 0; i < st.n; i++ {
			if st.dead[i] || st.mig[i] >= 0 {
				continue
			}
			if w != i {
				st.px[w], st.py[w], st.pz[w] = st.px[i], st.py[i], st.pz[i]
				st.cell[w], st.pid[w], st.seq[w] = st.cell[i], st.pid[i], st.seq[i]
				st.steps[w], st.h[w], st.arc[w] = st.steps[i], st.h[i], st.arc[i]
				st.prev[w] = st.prev[i]
			}
			st.dead[w], st.mig[w] = false, -1
			w++
		}
		st.n = w
		for src := 0; src < size; src++ {
			if src == rank {
				continue
			}
			tw := time.Now()
			data, err := ep.Recv(src, advectTagMigrate+round)
			idle += time.Since(tw)
			if err != nil {
				return err
			}
			c, err := st.ingest(data, src)
			if err != nil {
				return err
			}
			stats.MigratedIn += c
		}

		// Termination: allreduce of active counts as a Gather to the
		// root plus a total broadcast, both tagged with the round.
		tw := time.Now()
		parts, err := ep.Gather(0, advectTagCount+round, []float64{float64(st.n)})
		if err != nil {
			idle += time.Since(tw)
			return err
		}
		var total float64
		if rank == 0 {
			for _, p := range parts {
				total += p[0]
			}
			for dst := 1; dst < size; dst++ {
				if err := ep.Send(dst, advectTagTotal+round, []float64{total}); err != nil {
					idle += time.Since(tw)
					return err
				}
			}
		} else {
			d, err := ep.Recv(0, advectTagTotal+round)
			if err != nil {
				idle += time.Since(tw)
				return err
			}
			total = d[0]
		}
		idle += time.Since(tw)
		sh.tracer.End(track, "advect.exchange", t1)
		if total == 0 {
			terminated = true
			break
		}
	}
	if !terminated {
		return fmt.Errorf("dist: advect did not terminate within %d rounds (rank %d still holds %d active particles)", sh.maxRounds, rank, st.n)
	}

	stats.Steps = st.stepsTaken
	stats.IdleNs = int64(idle)
	rec := &sh.recs[rank]
	rec.Flops(st.samples*90 + st.stepsTaken*30 + st.rejects*20)
	rec.IntOps(st.samples * 24)
	rec.Branches(st.samples * 6)
	rec.Loads(st.samples*192, ops.Resident)
	rec.LoadsN(st.crossings, 192, ops.Random)
	rec.Stores(st.stepsTaken*32, ops.Stream)
	pathBytes := st.crossings * 96
	if blockBytes := uint64(sh.blocks[rank].Grid.NumPoints()) * 24; pathBytes > blockBytes {
		pathBytes = blockBytes
	}
	rec.WorkingSet(pathBytes + st.stepsTaken*32)

	// Final gather: every rank ships its arena as
	// [nSegs, (pid, seq, n, n×(x, y, z, spd))...]; the root sorts by
	// (pid, seq) and assembles with the oracle's qualifying rule.
	segBuf := make([]float64, 0, 1+len(st.segs)*3+len(st.pts)*4)
	segBuf = append(segBuf, float64(len(st.segs)))
	for _, sg := range st.segs {
		segBuf = append(segBuf, float64(sg.pid), float64(sg.seq), float64(sg.n))
		for j := sg.off; j < sg.off+sg.n; j++ {
			p := st.pts[j]
			segBuf = append(segBuf, p[0], p[1], p[2], st.spd[j])
		}
	}
	parts, err := ep.Gather(0, advectTagSegs, segBuf)
	if err != nil {
		return err
	}
	if rank != 0 {
		return nil
	}
	lines, err := assembleGather(parts, len(sh.starts))
	if err != nil {
		return err
	}
	sh.lines = lines
	sh.rounds = rounds
	return nil
}

// burstFixed advances particle i by up to advectBurstSteps fixed RK4
// steps, stopping early on termination (domain exit or step budget)
// or when the particle's cell layer leaves the owned range (marked
// for migration). Arithmetic and accounting mirror the shared-memory
// roundsFixed loop exactly.
func (sh *advectShared) burstFixed(st *advectRankState, s *mesh.BlockVectorSampler, i int, rank int32) {
	b := sh.g.Bounds()
	h := sh.fo.StepLength
	numSteps := int32(sh.fo.NumSteps)
	p := mesh.Vec3{st.px[i], st.py[i], st.pz[i]}
	lastCell := int(st.cell[i])
	off := int32(len(st.pts))
	if st.steps[i] == 0 {
		// First-ever burst: record the seed point (migration requires
		// an accepted step, so an arrival always has steps > 0).
		v0, _ := s.Sample(p)
		st.pts = append(st.pts, p)
		st.spd = append(st.spd, v0.Norm())
	}
	for t := 0; t < advectBurstSteps && st.steps[i] < numSteps; t++ {
		next, v0, ok := advect.RK4Step(s, p, h)
		st.samples += 4
		if !ok {
			st.dead[i] = true // left the bounding box: terminate
			break
		}
		p = next
		if !b.Contains(p) {
			st.dead[i] = true
			break
		}
		st.steps[i]++
		st.stepsTaken++
		st.pts = append(st.pts, p)
		st.spd = append(st.spd, v0.Norm())
		if c, inGrid := s.Cell(p); inGrid && c != lastCell {
			st.crossings++
			lastCell = c
		}
		if layer, lok := s.CellLayer(p); lok {
			if o := sh.owners[layer]; o != rank {
				st.mig[i] = o
				break
			}
		}
	}
	if !st.dead[i] && st.mig[i] < 0 && st.steps[i] >= numSteps {
		st.dead[i] = true // step budget exhausted
	}
	if n := int32(len(st.pts)) - off; n > 0 {
		st.segs = append(st.segs, rankSeg{pid: st.pid[i], seq: st.seq[i], off: off, n: n})
		st.seq[i]++
	}
	st.px[i], st.py[i], st.pz[i] = p[0], p[1], p[2]
	st.cell[i] = int32(lastCell)
}

// burstAdaptive advances particle i by up to advectBurstSteps accepted
// Bogacki–Shampine steps with the per-particle step size and arc
// length carried in (and migrated with) the SoA state. Trial order,
// controller updates, and retirement accounting mirror the
// shared-memory roundsAdaptive loop exactly.
func (sh *advectShared) burstAdaptive(st *advectRankState, s *mesh.BlockVectorSampler, i int, rank int32) {
	b := sh.g.Bounds()
	h0 := sh.fo.StepLength
	tol := sh.fo.Tolerance
	hMin, hMax := advect.AdaptiveStepBounds(h0)
	maxSteps := sh.fo.NumSteps
	maxLen := float64(sh.fo.NumSteps) * h0
	cellDiag := sh.g.Spacing.Norm()

	p := mesh.Vec3{st.px[i], st.py[i], st.pz[i]}
	hh := st.h[i]
	arc := st.arc[i]
	acc := int(st.steps[i])
	off := int32(len(st.pts))
	retired := false
	if acc == 0 {
		v, _ := s.Sample(p)
		st.pts = append(st.pts, p)
		st.spd = append(st.spd, v.Norm())
		st.stepsTaken++
	}
steps:
	for t := 0; t < advectBurstSteps; t++ {
		if acc >= maxSteps || arc >= maxLen {
			retired = true
			break
		}
		for {
			next, v0, errEst, ok := advect.BS23Step(s, p, hh)
			st.samples += 4
			if !ok {
				retired = true // left the domain
				break steps
			}
			if errEst <= tol || hh <= hMin {
				d := next.Sub(p).Norm()
				p = next
				if !b.Contains(p) {
					retired = true
					break steps
				}
				arc += d
				st.pts = append(st.pts, p)
				st.spd = append(st.spd, v0.Norm())
				st.stepsTaken++
				acc++
				hh = advect.StepController(hh, errEst, tol, hMin, hMax)
				if layer, lok := s.CellLayer(p); lok {
					if o := sh.owners[layer]; o != rank {
						st.mig[i] = o
						break steps
					}
				}
				break
			}
			st.rejects++
			hh = advect.StepController(hh, errEst, tol, hMin, hMax)
		}
	}
	if retired {
		st.crossings += uint64(arc/cellDiag) + 1
		st.dead[i] = true
	}
	if n := int32(len(st.pts)) - off; n > 0 {
		st.segs = append(st.segs, rankSeg{pid: st.pid[i], seq: st.seq[i], off: off, n: n})
		st.seq[i]++
	}
	st.px[i], st.py[i], st.pz[i] = p[0], p[1], p[2]
	st.h[i] = hh
	st.arc[i] = arc
	st.steps[i] = int32(acc)
}

// assembleGather stitches the per-rank segment messages into one
// LineSet exactly as the shared-memory assemble does: segments sorted
// by (pid, seq), particles with fewer than two points dropped, output
// slices sized exactly.
func assembleGather(parts [][]float64, nP int) (*mesh.LineSet, error) {
	type rootSeg struct {
		pid, seq, n int32
		rank, off   int
	}
	var all []rootSeg
	for r, data := range parts {
		if len(data) < 1 {
			return nil, fmt.Errorf("dist: advect segment gather from rank %d is empty", r)
		}
		ns := int(data[0])
		pos := 1
		for k := 0; k < ns; k++ {
			if pos+3 > len(data) {
				return nil, fmt.Errorf("dist: advect segment gather from rank %d truncated", r)
			}
			sg := rootSeg{pid: int32(data[pos]), seq: int32(data[pos+1]), n: int32(data[pos+2]), rank: r}
			pos += 3
			sg.off = pos
			pos += 4 * int(sg.n)
			if pos > len(data) || sg.pid < 0 || int(sg.pid) >= nP {
				return nil, fmt.Errorf("dist: advect segment gather from rank %d malformed", r)
			}
			all = append(all, sg)
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].pid != all[b].pid {
			return all[a].pid < all[b].pid
		}
		return all[a].seq < all[b].seq
	})
	counts := make([]int32, nP)
	for _, sg := range all {
		counts[sg.pid] += sg.n
	}
	nLines, total := 0, 0
	for _, c := range counts {
		if c >= 2 {
			total += int(c)
			nLines++
		}
	}
	out := &mesh.LineSet{
		Points:  make([]mesh.Vec3, 0, total),
		Scalars: make([]float64, 0, total),
		Offsets: make([]int32, 1, nLines+1),
	}
	for i := 0; i < len(all); {
		j := i
		pid := all[i].pid
		for j < len(all) && all[j].pid == pid {
			j++
		}
		if counts[pid] >= 2 {
			for _, sg := range all[i:j] {
				data := parts[sg.rank]
				for q := 0; q < int(sg.n); q++ {
					o := sg.off + 4*q
					out.Points = append(out.Points, mesh.Vec3{data[o], data[o+1], data[o+2]})
					out.Scalars = append(out.Scalars, data[o+3])
				}
			}
			out.Offsets = append(out.Offsets, int32(len(out.Points)))
		}
		i = j
	}
	return out, nil
}
