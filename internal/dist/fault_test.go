package dist

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/par"
	"repro/internal/render"
	"repro/internal/sim/clover"
)

// guarded runs fn on its own goroutine and fails the test if it has not
// returned within limit (or the test deadline, whichever is sooner): a
// reintroduced fabric deadlock fails fast instead of wedging the run.
func guarded(t *testing.T, limit time.Duration, fn func() error) error {
	t.Helper()
	if dl, ok := t.Deadline(); ok {
		if until := time.Until(dl) - time.Second; until < limit {
			limit = until
		}
	}
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(limit):
		t.Fatalf("fabric operation still blocked after %v (deadlock regression)", limit)
		return nil
	}
}

// wantAbortFrom asserts err is the typed abort naming the given rank.
func wantAbortFrom(t *testing.T, err error, rank int) *AbortError {
	t.Helper()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("errors.Is(err, ErrAborted) = false for %v", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an *AbortError: %v", err)
	}
	if ae.Rank != rank {
		t.Fatalf("abort originated at rank %d, want %d: %v", ae.Rank, rank, err)
	}
	return ae
}

// TestGatherAbortsPeersOnRankError is the Comm.Run error-path regression:
// a rank that returns an error before contributing to a 4-rank Gather
// used to leave the root blocked in Recv forever. Now every peer
// unblocks and the returned error names the originating rank.
func TestGatherAbortsPeersOnRankError(t *testing.T) {
	comm, err := NewComm(4)
	if err != nil {
		t.Fatal(err)
	}
	var unblocked atomic.Int32
	runErr := guarded(t, 10*time.Second, func() error {
		return comm.Run(func(ep *Endpoint) error {
			if ep.Rank() == 2 {
				return errors.New("simulated rank crash")
			}
			_, err := ep.Gather(0, 1, []float64{float64(ep.Rank())})
			unblocked.Add(1)
			return err
		})
	})
	wantAbortFrom(t, runErr, 2)
	if !strings.Contains(runErr.Error(), "rank 2") {
		t.Errorf("error does not name the failing rank: %v", runErr)
	}
	if got := unblocked.Load(); got != 3 {
		t.Errorf("%d of 3 surviving ranks returned from Gather", got)
	}
	if comm.Err() == nil {
		t.Error("Comm.Err() nil after abort")
	}
}

// TestSendUnblocksWhenPeerFails: a (src, dst) pair buffer that fills used
// to block Send permanently; the abort signal must release it.
func TestSendUnblocksWhenPeerFails(t *testing.T) {
	comm, err := NewCommWith(2, Options{BufferCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sendErr error
	runErr := guarded(t, 10*time.Second, func() error {
		return comm.Run(func(ep *Endpoint) error {
			if ep.Rank() == 1 {
				return errors.New("receiver died")
			}
			for i := 0; i < 64; i++ {
				if err := ep.Send(1, 0, []float64{float64(i)}); err != nil {
					sendErr = err
					return err
				}
			}
			t.Error("64 sends into a dead 2-slot buffer all succeeded")
			return nil
		})
	})
	wantAbortFrom(t, runErr, 1)
	if !errors.Is(sendErr, ErrAborted) {
		t.Errorf("blocked Send returned %v, want ErrAborted", sendErr)
	}
}

// TestSendDeadline: with SendTimeout set, a send against a wedged
// receiver fails with ErrStalled instead of blocking forever, and the
// stall aborts the run.
func TestSendDeadline(t *testing.T) {
	comm, err := NewCommWith(3, Options{BufferCap: 1, SendTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	runErr := guarded(t, 10*time.Second, func() error {
		return comm.Run(func(ep *Endpoint) error {
			switch ep.Rank() {
			case 0:
				// The second send overflows the 1-slot buffer and must
				// stall out rather than deadlock.
				for i := 0; i < 2; i++ {
					if err := ep.Send(1, 7, nil); err != nil {
						return err
					}
				}
				return nil
			case 1:
				// Wedged: waiting on rank 2, which never sends.
				_, err := ep.Recv(2, 9)
				return err
			default:
				<-ep.comm.Done()
				return nil
			}
		})
	})
	wantAbortFrom(t, runErr, 0)
	if !errors.Is(runErr, ErrStalled) {
		t.Errorf("stalled send not surfaced: %v", runErr)
	}
}

// TestExternalCancel: Comm.Cancel releases ranks deadlocked on each
// other and reports ExternalRank.
func TestExternalCancel(t *testing.T) {
	comm, err := NewComm(2)
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("operator interrupt")
	time.AfterFunc(20*time.Millisecond, func() { comm.Cancel(cause) })
	runErr := guarded(t, 10*time.Second, func() error {
		return comm.Run(func(ep *Endpoint) error {
			// Every rank waits on the other: a certain deadlock without
			// the external cancel.
			_, err := ep.Recv(1-ep.Rank(), 0)
			return err
		})
	})
	ae := wantAbortFrom(t, runErr, ExternalRank)
	if !errors.Is(ae, cause) && !errors.Is(runErr, cause) {
		t.Errorf("cancel cause lost: %v", runErr)
	}
}

// TestDropKeepsNonOvertaking: a dropped message does not reorder the
// stream — the receiver sees the next message in program order (here a
// tag mismatch, which aborts the run cleanly).
func TestDropKeepsNonOvertaking(t *testing.T) {
	fault := &FaultPlan{
		Drop: func(src, dst, tag, seq int) bool { return src == 0 && dst == 1 && seq == 0 },
	}
	comm, err := NewCommWith(2, Options{Fault: fault})
	if err != nil {
		t.Fatal(err)
	}
	runErr := guarded(t, 10*time.Second, func() error {
		return comm.Run(func(ep *Endpoint) error {
			if ep.Rank() == 0 {
				if err := ep.Send(1, 1, []float64{1}); err != nil { // dropped
					return err
				}
				return ep.Send(1, 2, []float64{2})
			}
			_, err := ep.Recv(0, 1) // arrives as tag 2: the drop is visible, not reordered
			return err
		})
	})
	wantAbortFrom(t, runErr, 1)
	if !strings.Contains(runErr.Error(), "expected tag 1") {
		t.Errorf("drop did not surface as the next-in-order message: %v", runErr)
	}
}

// identicalImages reports whether two images match bit for bit.
func identicalImages(a, b *render.Image) bool {
	if len(a.Pix) != len(b.Pix) {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] || a.Depth[i] != b.Depth[i] {
			return false
		}
	}
	return true
}

// jitter is the deterministic per-message delay used by the straggler
// tests: a hash of (src, dst, tag, seq) spread over 0–200µs, so the
// schedule is adversarial but reproducible.
func jitter(src, dst, tag, seq int) time.Duration {
	h := uint64(src)*2654435761 ^ uint64(dst)<<20 ^ uint64(tag)<<40 ^ uint64(seq)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return time.Duration(h%200) * time.Microsecond
}

// TestRayTraceUnderMessageDelays: random (deterministic) per-message
// delays on an 8-rank sort-last composite must not change a single bit
// of the image — compositing order is by rank, not arrival.
func TestRayTraceUnderMessageDelays(t *testing.T) {
	g := energyGrid(t)
	pool := par.NewPool(2)
	cam := render.OrbitCamera(g.Bounds(), 0.7, 0.4, 2.0)
	const w, h, ranks = 32, 32, 8

	var clean, delayed *render.Image
	err := guarded(t, 60*time.Second, func() error {
		var err error
		clean, _, err = RayTraceWith(energyGrid(t), "energy", ranks, cam, w, h, pool, Options{})
		if err != nil {
			return err
		}
		delayed, _, err = RayTraceWith(energyGrid(t), "energy", ranks, cam, w, h, pool,
			Options{Fault: &FaultPlan{Delay: jitter}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !identicalImages(clean, delayed) {
		t.Error("message delays changed the ray-traced composite")
	}
}

// TestVolumeRenderUnderMessageDelays mirrors the ray-tracing check for
// ordered alpha compositing, and adds the failure path: an injected
// rank fault must surface as a clean transient ErrAborted, never a hang.
func TestVolumeRenderUnderMessageDelays(t *testing.T) {
	g := energyGrid(t)
	pool := par.NewPool(2)
	cam := render.OrbitCamera(g.Bounds(), 0.9, 0.35, 2.0)
	const w, h, ranks = 32, 32, 8

	var clean, delayed *render.Image
	err := guarded(t, 60*time.Second, func() error {
		var err error
		clean, _, err = VolumeRenderWith(energyGrid(t), "energy", ranks, cam, w, h, pool, Options{})
		if err != nil {
			return err
		}
		delayed, _, err = VolumeRenderWith(energyGrid(t), "energy", ranks, cam, w, h, pool,
			Options{Fault: &FaultPlan{Delay: jitter}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !identicalImages(clean, delayed) {
		t.Error("message delays changed the volume-rendered composite")
	}

	// Failure path: rank 5's first fabric send fails (transiently).
	fault := &FaultPlan{Fail: &FailSpec{Rank: 5, Op: 0, Transient: true}, Delay: jitter}
	var im *render.Image
	ferr := guarded(t, 60*time.Second, func() error {
		var err error
		im, _, err = VolumeRenderWith(energyGrid(t), "energy", ranks, cam, w, h, pool, Options{Fault: fault})
		return err
	})
	wantAbortFrom(t, ferr, 5)
	if !errors.Is(ferr, ErrInjected) {
		t.Errorf("injected cause lost: %v", ferr)
	}
	if !IsTransient(ferr) {
		t.Errorf("transient marking lost: %v", ferr)
	}
	if im != nil {
		t.Error("aborted composite still returned an image")
	}
}

// TestDistSimAbortsOnHaloFault: an injected halo-exchange failure stops
// the lockstep hydro step cleanly on every rank.
func TestDistSimAbortsOnHaloFault(t *testing.T) {
	fault := &FaultPlan{Fail: &FailSpec{Rank: 1, Op: 1}}
	d, err := NewDistSimWith(8, 3, clover.Options{}, Options{Fault: fault})
	if err != nil {
		t.Fatal(err)
	}
	pool := par.NewPool(2)
	stepErr := guarded(t, 30*time.Second, func() error {
		_, err := d.Step(pool, nil)
		return err
	})
	wantAbortFrom(t, stepErr, 1)
	if !errors.Is(stepErr, ErrInjected) {
		t.Errorf("injected cause lost: %v", stepErr)
	}
}

// TestRunRecoversRankPanic: a panicking rank aborts the run instead of
// crashing the process or deadlocking its peers.
func TestRunRecoversRankPanic(t *testing.T) {
	comm, err := NewComm(3)
	if err != nil {
		t.Fatal(err)
	}
	runErr := guarded(t, 10*time.Second, func() error {
		return comm.Run(func(ep *Endpoint) error {
			if ep.Rank() == 1 {
				panic("rank blew up")
			}
			return ep.Barrier(3)
		})
	})
	wantAbortFrom(t, runErr, 1)
	if !strings.Contains(runErr.Error(), "rank blew up") {
		t.Errorf("panic message lost: %v", runErr)
	}
}
