package dist

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/viz"
	"repro/internal/viz/advect"
)

// helixGrid builds a velocity field that rotates particles around the
// cube's vertical axis while pushing them up and down in z with a
// fast-oscillating component: as a particle orbits, x sweeps through
// several periods of sin(8πx), so the particle repeatedly reverses its
// z-motion and crosses slab boundaries in both directions — the
// migration- and ping-pong-heavy workload the distributed path must
// survive bit for bit. (The shared bench field's z-motion is nearly
// flat, which would never exercise migration.)
func helixGrid(t testing.TB, n int) *mesh.UniformGrid {
	t.Helper()
	g, err := mesh.NewCubeGrid(n)
	if err != nil {
		t.Fatal(err)
	}
	v := g.AddPointVector("velocity")
	for id := 0; id < g.NumPoints(); id++ {
		p := g.PointPosition(id)
		v[id] = mesh.Vec3{
			-(p[1] - 0.5),
			p[0] - 0.5,
			0.8 * math.Sin(8*math.Pi*p[0]),
		}
	}
	return g
}

func helixFilter(adaptive bool) *advect.Filter {
	return advect.New(advect.Options{
		NumParticles: 48,
		NumSteps:     400,
		StepLength:   0.004,
		Adaptive:     adaptive,
		Tolerance:    1e-6,
	})
}

// assertLinesEqual requires bit-identical streamline sets: points,
// speeds, and offsets.
func assertLinesEqual(t *testing.T, want, got *mesh.LineSet, label string) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil LineSet", label)
	}
	if len(got.Offsets) != len(want.Offsets) {
		t.Fatalf("%s: %d lines, want %d", label, len(got.Offsets)-1, len(want.Offsets)-1)
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("%s: offset %d = %d, want %d", label, i, got.Offsets[i], want.Offsets[i])
		}
	}
	if len(got.Points) != len(want.Points) || len(got.Scalars) != len(want.Scalars) {
		t.Fatalf("%s: %d points / %d scalars, want %d / %d",
			label, len(got.Points), len(got.Scalars), len(want.Points), len(want.Scalars))
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("%s: point %d = %v, want %v (bit-exact)", label, i, got.Points[i], want.Points[i])
		}
		if got.Scalars[i] != want.Scalars[i] {
			t.Fatalf("%s: scalar %d = %v, want %v (bit-exact)", label, i, got.Scalars[i], want.Scalars[i])
		}
	}
}

// testDeadline returns a watchdog deadline comfortably inside the test
// binary's own deadline, so a wedged fabric aborts cleanly instead of
// timing out the run.
func testDeadline(t *testing.T) time.Duration {
	d := 30 * time.Second
	if dl, ok := t.Deadline(); ok {
		if remain := time.Until(dl) / 2; remain < d {
			d = remain
		}
	}
	return d
}

// TestAdvectGoldenRanks: dist.Advect reproduces single-rank advect.Run
// bit for bit — streamline points, speeds, and offsets — across 1, 2,
// 4, and 8 ranks, in both fixed-step RK4 and adaptive BS23 modes,
// under heavy migration. Also checks the conservation invariants of
// the per-rank stats.
func TestAdvectGoldenRanks(t *testing.T) {
	g := helixGrid(t, 16)
	pool := par.NewPool(2)
	for _, adaptive := range []bool{false, true} {
		mode := "fixed"
		if adaptive {
			mode = "adaptive"
		}
		f := helixFilter(adaptive)
		want, err := f.Run(g, viz.NewExec(pool))
		if err != nil {
			t.Fatal(err)
		}
		for _, ranks := range []int{1, 2, 4, 8} {
			res, err := Advect(g, f, ranks, AdvectOptions{Deadline: testDeadline(t)})
			if err != nil {
				t.Fatalf("%s ranks=%d: %v", mode, ranks, err)
			}
			assertLinesEqual(t, want.Lines, res.Lines, mode+" ranks="+string(rune('0'+ranks)))

			var seeded, out, in, retired int
			var steps uint64
			for _, s := range res.Stats {
				seeded += s.Seeded
				out += s.MigratedOut
				in += s.MigratedIn
				retired += s.Retired
				steps += s.Steps
			}
			if seeded != f.Options().NumParticles {
				t.Fatalf("%s ranks=%d: %d seeded, want %d", mode, ranks, seeded, f.Options().NumParticles)
			}
			if out != in {
				t.Fatalf("%s ranks=%d: migrated out %d != migrated in %d", mode, ranks, out, in)
			}
			if retired != seeded {
				t.Fatalf("%s ranks=%d: %d retired, want %d", mode, ranks, retired, seeded)
			}
			if res.Rounds < 1 || res.Profile.IsZero() {
				t.Fatalf("%s ranks=%d: rounds=%d profile zero=%v", mode, ranks, res.Rounds, res.Profile.IsZero())
			}
			if ranks == 1 && (out != 0 || in != 0) {
				t.Fatalf("single rank migrated %d/%d particles", out, in)
			}
			if ranks >= 4 && out == 0 {
				t.Fatalf("%s ranks=%d: no migration — the field is not exercising the exchange", mode, ranks)
			}
		}
	}
}

// TestAdvectPingPong: the oscillating-z field sends particles back to
// the rank they came from, and the counters see it.
func TestAdvectPingPong(t *testing.T) {
	g := helixGrid(t, 16)
	f := helixFilter(false)
	res, err := Advect(g, f, 8, AdvectOptions{Deadline: testDeadline(t)})
	if err != nil {
		t.Fatal(err)
	}
	ping := 0
	for _, s := range res.Stats {
		ping += s.PingPong
	}
	if ping == 0 {
		t.Fatal("no ping-pong migrations counted on the oscillating field")
	}
}

// TestAdvectSeedRejection: out-of-domain seeds injected through
// AdvectOptions.Seeds are rejected exactly as the shared-memory paths
// reject them — the gathered LineSet stays bit-identical to RunSeeds
// over the same list.
func TestAdvectSeedRejection(t *testing.T) {
	g := helixGrid(t, 16)
	pool := par.NewPool(2)
	seeds := []mesh.Vec3{
		{0.5, 0.5, 0.5},
		{-0.25, 0.5, 0.5},                // outside low x
		{0.5, 0.5, math.Nextafter(1, 2)}, // one ulp past the top face
		{0.25, 0.75, 0.97},
		{2, 2, 2}, // far outside
		{0.75, 0.25, 0.03},
		{0, 0, 0}, // boundary-exact corner
	}
	for _, adaptive := range []bool{false, true} {
		f := helixFilter(adaptive)
		want, err := f.RunSeeds(g, viz.NewExec(pool), seeds)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Advect(g, f, 4, AdvectOptions{Seeds: seeds, Deadline: testDeadline(t)})
		if err != nil {
			t.Fatal(err)
		}
		assertLinesEqual(t, want.Lines, res.Lines, "seed rejection")
		seeded := 0
		for _, s := range res.Stats {
			seeded += s.Seeded
		}
		if seeded != 4 {
			t.Fatalf("%d live seeds accepted, want 4", seeded)
		}
	}
}

// TestAdvectFaultDelay: injected migration delays reorder nothing —
// the exchange is tagged per round and per pair — so the output stays
// bit-identical to the clean run.
func TestAdvectFaultDelay(t *testing.T) {
	g := helixGrid(t, 16)
	f := helixFilter(false)
	want, err := Advect(g, f, 4, AdvectOptions{Deadline: testDeadline(t)})
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Delay: func(src, dst, tag, seq int) time.Duration {
		if tag >= advectTagMigrate && tag < advectTagCount && seq%3 == 0 {
			return time.Millisecond
		}
		return 0
	}}
	res, err := Advect(g, f, 4, AdvectOptions{
		Fabric:   Options{Fault: plan},
		Deadline: testDeadline(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertLinesEqual(t, want.Lines, res.Lines, "delayed fabric")
}

// TestAdvectFaultDrop: silently dropping migration traffic wedges the
// receiver (the fabric is non-overtaking, so no later tag can match),
// and the armed deadline converts the stall into a clean typed
// *AbortError instead of a hang.
func TestAdvectFaultDrop(t *testing.T) {
	g := helixGrid(t, 16)
	f := helixFilter(false)
	plan := &FaultPlan{Drop: func(src, dst, tag, seq int) bool {
		return src == 1 && tag >= advectTagMigrate && tag < advectTagCount
	}}
	start := time.Now()
	_, err := Advect(g, f, 4, AdvectOptions{
		Fabric:   Options{Fault: plan},
		Deadline: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("dropped migration traffic produced no error")
	}
	var abort *AbortError
	if !errors.As(err, &abort) || !errors.Is(err, ErrAborted) {
		t.Fatalf("want *AbortError wrapping ErrAborted, got %T: %v", err, err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("abort took %v, deadline watchdog did not fire", elapsed)
	}
}

// TestAdvectValidation: bad configurations fail fast with typed
// errors instead of reaching the fabric.
func TestAdvectValidation(t *testing.T) {
	g := helixGrid(t, 8)
	f := helixFilter(false)
	if _, err := Advect(g, f, 0, AdvectOptions{}); err == nil {
		t.Fatal("0 ranks accepted")
	}
	if _, err := Advect(g, f, 9, AdvectOptions{}); err == nil {
		t.Fatal("more ranks than cell layers accepted")
	}
	if _, err := Advect(g, f, 2, AdvectOptions{Fabric: Options{BufferCap: -1}}); err == nil {
		t.Fatal("rendezvous fabric accepted")
	}
	missing := advect.New(advect.Options{Vector: "nope"})
	if _, err := Advect(g, missing, 2, AdvectOptions{}); err == nil {
		t.Fatal("missing vector field accepted")
	}
}
