package dist

import (
	"fmt"
	"math"

	"repro/internal/mesh"
	"repro/internal/ops"
	"repro/internal/par"
	"repro/internal/sim/clover"
)

// DistSim is the distributed-memory hydrodynamics proxy: the global cube
// is split into z-slab subdomains, one per rank, stepped in lockstep with
// a one-layer halo exchange before each z sweep and a global CFL
// reduction before each step. With first-order sweeps the distributed
// run reproduces the single-domain run bit for bit (the tests check
// exact equality), because every boundary flux sees exactly the same
// inputs the serial sweep saw.
type DistSim struct {
	n     int
	ranks []*clover.Sim
	comm  *Comm
	time  float64
	steps int
}

// ghost tags for the halo exchange and reductions.
const (
	tagSpeed = 100
	tagDT    = 101
	tagHalo  = 102
)

// NewDistSim builds an n-cell global cube split across nRanks z-slabs.
func NewDistSim(n, nRanks int, opts clover.Options) (*DistSim, error) {
	return NewDistSimWith(n, nRanks, opts, Options{})
}

// NewDistSimWith is NewDistSim on a fabric with explicit Options, so the
// halo exchange can run under fault injection or send deadlines.
func NewDistSimWith(n, nRanks int, opts clover.Options, comms Options) (*DistSim, error) {
	if opts.SecondOrder {
		return nil, fmt.Errorf("dist: the halo is one layer; second-order sweeps are not supported")
	}
	if nRanks < 1 || nRanks > n {
		return nil, fmt.Errorf("dist: cannot cut %d slabs from %d layers", nRanks, n)
	}
	comm, err := NewCommWith(nRanks, comms)
	if err != nil {
		return nil, err
	}
	d := &DistSim{n: n, comm: comm, ranks: make([]*clover.Sim, nRanks)}
	for r := 0; r < nRanks; r++ {
		k0 := r * n / nRanks
		k1 := (r + 1) * n / nRanks
		sim, err := clover.NewSlab(n, k0, k1, opts)
		if err != nil {
			return nil, err
		}
		d.ranks[r] = sim
	}
	return d, nil
}

// Ranks returns the number of ranks.
func (d *DistSim) Ranks() int { return len(d.ranks) }

// Time returns the simulated physical time.
func (d *DistSim) Time() float64 { return d.time }

// StepCount returns the number of steps taken.
func (d *DistSim) StepCount() int { return d.steps }

// Rank returns rank r's subdomain (for inspection and tests).
func (d *DistSim) Rank(r int) *clover.Sim { return d.ranks[r] }

// encodeGhost flattens halo cells for the fabric.
func encodeGhost(g []clover.GhostCell) []float64 {
	out := make([]float64, 0, len(g)*7)
	for _, c := range g {
		out = append(out, c.Rho, c.Mx, c.My, c.Mz, c.E, c.P, c.C)
	}
	return out
}

func decodeGhost(d []float64) []clover.GhostCell {
	out := make([]clover.GhostCell, len(d)/7)
	for i := range out {
		b := d[i*7:]
		out[i] = clover.GhostCell{Rho: b[0], Mx: b[1], My: b[2], Mz: b[3], E: b[4], P: b[5], C: b[6]}
	}
	return out
}

// Step advances every rank by one lockstep timestep and returns dt.
// recsByRank, when non-nil, carries one recorder slice per rank sized to
// the pool's workers.
func (d *DistSim) Step(pool *par.Pool, recsByRank [][]ops.Recorder) (float64, error) {
	if pool == nil {
		pool = par.NewPool(1)
	}
	nRanks := len(d.ranks)
	dts := make([]float64, nRanks)
	err := d.comm.Run(func(ep *Endpoint) error {
		r := ep.Rank()
		sim := d.ranks[r]
		var recs []ops.Recorder
		if recsByRank != nil {
			recs = recsByRank[r]
		}
		// 1. Local CFL candidate, all-reduced to the global max speed
		//    (gather on root, broadcast back).
		local := sim.MaxSignalSpeed(pool, recs)
		speeds, err := ep.Gather(0, tagSpeed, []float64{local})
		if err != nil {
			return err
		}
		var dt float64
		if r == 0 {
			global := 0.0
			for _, s := range speeds {
				global = math.Max(global, s[0])
			}
			dt = sim.DT(global)
			for dst := 1; dst < nRanks; dst++ {
				if err := ep.Send(dst, tagDT, []float64{dt}); err != nil {
					return err
				}
			}
		} else {
			v, err := ep.Recv(0, tagDT)
			if err != nil {
				return err
			}
			dt = v[0]
		}
		dts[r] = dt

		// 2. The x/y sweeps never cross slab boundaries.
		sim.SweepXY(dt, pool, recs)

		// 3. Halo exchange: my post-refresh boundary layers go to my
		//    neighbors; theirs become my z-sweep ghosts.
		loLayer, hiLayer := sim.ZBoundary()
		var ghostLo, ghostHi []clover.GhostCell
		if r > 0 {
			if err := ep.Send(r-1, tagHalo, encodeGhost(loLayer)); err != nil {
				return err
			}
		}
		if r < nRanks-1 {
			if err := ep.Send(r+1, tagHalo, encodeGhost(hiLayer)); err != nil {
				return err
			}
			data, err := ep.Recv(r+1, tagHalo)
			if err != nil {
				return err
			}
			ghostHi = decodeGhost(data)
		}
		if r > 0 {
			data, err := ep.Recv(r-1, tagHalo)
			if err != nil {
				return err
			}
			ghostLo = decodeGhost(data)
		}

		// 4. The z sweep with halo (or wall) boundaries.
		sim.SweepZ(dt, pool, recs, ghostLo, ghostHi)
		sim.FinishStep(dt)
		return nil
	})
	if err != nil {
		return 0, err
	}
	d.time += dts[0]
	d.steps++
	return dts[0], nil
}

// Run advances the distributed simulation by steps timesteps.
func (d *DistSim) Run(steps int, pool *par.Pool, recsByRank [][]ops.Recorder) error {
	for i := 0; i < steps; i++ {
		if _, err := d.Step(pool, recsByRank); err != nil {
			return err
		}
	}
	return nil
}

// TotalMass integrates density over all ranks.
func (d *DistSim) TotalMass() float64 {
	sum := 0.0
	for _, s := range d.ranks {
		sum += s.TotalMass()
	}
	return sum
}

// TotalEnergy integrates total energy over all ranks.
func (d *DistSim) TotalEnergy() float64 {
	sum := 0.0
	for _, s := range d.ranks {
		sum += s.TotalEnergy()
	}
	return sum
}

// Grid assembles the global data set from the rank slabs, producing the
// same fields as the single-domain export.
func (d *DistSim) Grid() (*mesh.UniformGrid, error) {
	// Reassemble through a scratch single-domain simulation is not
	// possible (state is private), so build the grid directly from the
	// per-rank cells.
	g, err := mesh.NewCubeGrid(d.n)
	if err != nil {
		return nil, err
	}
	energy := g.AddCellField("energy")
	density := g.AddCellField("density")
	pressure := g.AddCellField("pressure")
	const gamma = 1.4
	for _, sim := range d.ranks {
		for k := 0; k < sim.LocalNZ(); k++ {
			gk := k + sim.ZOffset()
			for j := 0; j < d.n; j++ {
				for i := 0; i < d.n; i++ {
					rho, mx, my, mz, etot := sim.Cell(i, j, k)
					inv := 1 / rho
					ke := 0.5 * (mx*mx + my*my + mz*mz) * inv
					c := g.CellID(i, j, gk)
					energy[c] = (etot - ke) * inv
					density[c] = rho
					pressure[c] = (gamma - 1) * (etot - ke)
				}
			}
		}
	}
	if _, err := g.CellToPoint("energy"); err != nil {
		return nil, err
	}
	return g, nil
}
