package dist

import (
	"testing"

	"repro/internal/telemetry"
)

// TestRankOpSpans: on a traced fabric every Send/Recv/Barrier/Gather
// records a span on the issuing rank's track, so a composite stalled on
// a peer shows up as a long span on the blocked rank.
func TestRankOpSpans(t *testing.T) {
	const n = 4
	tr := telemetry.New(n)
	for r := 0; r < n; r++ {
		tr.SetTrackName(telemetry.WorkerTrack(r), "rank")
	}
	comm, err := NewCommWith(n, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	err = comm.Run(func(ep *Endpoint) error {
		if err := ep.Barrier(7); err != nil {
			return err
		}
		_, err := ep.Gather(0, 8, []float64{float64(ep.Rank())})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	perRank := make([]map[string]int, n)
	for r := range perRank {
		perRank[r] = map[string]int{}
	}
	for _, s := range tr.Spans() {
		r := int(s.Track) - 1 // WorkerTrack(r) == r+1
		if r < 0 || r >= n {
			t.Fatalf("span %q on unexpected track %d", s.Name, s.Track)
		}
		perRank[r][s.Name]++
	}
	for r := 0; r < n; r++ {
		if perRank[r]["dist.barrier"] != 1 {
			t.Errorf("rank %d: %d barrier spans, want 1", r, perRank[r]["dist.barrier"])
		}
		if perRank[r]["dist.gather"] != 1 {
			t.Errorf("rank %d: %d gather spans, want 1", r, perRank[r]["dist.gather"])
		}
	}
	// Root's gather span must contain its per-peer recv spans; non-root
	// gathers contain one send.
	if perRank[0]["dist.recv"] < n-1 {
		t.Errorf("root recorded %d recv spans, want >= %d", perRank[0]["dist.recv"], n-1)
	}
	for r := 1; r < n; r++ {
		if perRank[r]["dist.send"] < 1 {
			t.Errorf("rank %d recorded no send span", r)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped %d spans", tr.Dropped())
	}
}

// TestRankOpSpansNestInGather: the containment structure holds — a
// nested Send/Recv span lies inside the Gather span that issued it.
func TestRankOpSpansNestInGather(t *testing.T) {
	const n = 2
	tr := telemetry.New(n)
	comm, err := NewCommWith(n, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.Run(func(ep *Endpoint) error {
		_, err := ep.Gather(0, 1, []float64{1})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		track := int32(telemetry.WorkerTrack(r))
		var gather *telemetry.Span
		for _, s := range tr.Spans() {
			if s.Track == track && s.Name == "dist.gather" {
				g := s
				gather = &g
			}
		}
		if gather == nil {
			t.Fatalf("rank %d has no gather span", r)
		}
		for _, s := range tr.Spans() {
			if s.Track == track && (s.Name == "dist.send" || s.Name == "dist.recv") {
				if s.Start < gather.Start || s.End() > gather.End() {
					t.Errorf("rank %d: %s [%d,%d) outside gather [%d,%d)",
						r, s.Name, s.Start, s.End(), gather.Start, gather.End())
				}
			}
		}
	}
}

// TestUntracedFabricRecordsNothing: the zero-value Options fabric must
// not require or touch a tracer.
func TestUntracedFabricRecordsNothing(t *testing.T) {
	comm, err := NewComm(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := comm.Run(func(ep *Endpoint) error {
		return ep.Barrier(1)
	}); err != nil {
		t.Fatal(err)
	}
}
