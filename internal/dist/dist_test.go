package dist

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/render"
	"repro/internal/viz"
	"repro/internal/viz/raytrace"
	"repro/internal/viz/volren"
)

func TestCommPointToPoint(t *testing.T) {
	comm, err := NewComm(3)
	if err != nil {
		t.Fatal(err)
	}
	err = comm.Run(func(ep *Endpoint) error {
		next := (ep.Rank() + 1) % ep.Size()
		prev := (ep.Rank() + ep.Size() - 1) % ep.Size()
		if err := ep.Send(next, 7, []float64{float64(ep.Rank())}); err != nil {
			return err
		}
		got, err := ep.Recv(prev, 7)
		if err != nil {
			return err
		}
		if int(got[0]) != prev {
			t.Errorf("rank %d received %v from %d", ep.Rank(), got, prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewComm(0); err == nil {
		t.Error("zero-rank fabric accepted")
	}
}

func TestCommSendCopies(t *testing.T) {
	comm, _ := NewComm(2)
	err := comm.Run(func(ep *Endpoint) error {
		if ep.Rank() == 0 {
			data := []float64{1, 2, 3}
			if err := ep.Send(1, 0, data); err != nil {
				return err
			}
			data[0] = 99 // mutation after send must not leak
			return nil
		}
		got, err := ep.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			t.Errorf("send aliased caller memory: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommGatherAndBarrier(t *testing.T) {
	comm, _ := NewComm(4)
	var after atomic.Int32
	err := comm.Run(func(ep *Endpoint) error {
		g, err := ep.Gather(0, 3, []float64{float64(ep.Rank() * 10)})
		if err != nil {
			return err
		}
		if ep.Rank() == 0 {
			for r, d := range g {
				if int(d[0]) != r*10 {
					t.Errorf("gather[%d] = %v", r, d)
				}
			}
		} else if g != nil {
			t.Errorf("non-root rank %d got gather data", ep.Rank())
		}
		if err := ep.Barrier(4); err != nil {
			return err
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 4 {
		t.Errorf("barrier completions = %d", after.Load())
	}
}

func TestCommTagMismatch(t *testing.T) {
	comm, _ := NewComm(2)
	err := comm.Run(func(ep *Endpoint) error {
		if ep.Rank() == 0 {
			return ep.Send(1, 5, nil)
		}
		_, err := ep.Recv(0, 6)
		if err == nil {
			t.Error("tag mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// energyGrid is a 16^3 grid with a smooth scalar field.
func energyGrid(t testing.TB) *mesh.UniformGrid {
	t.Helper()
	g, err := mesh.NewCubeGrid(16)
	if err != nil {
		t.Fatal(err)
	}
	f := g.AddPointField("energy")
	c := mesh.Vec3{0.5, 0.5, 0.5}
	for id := 0; id < g.NumPoints(); id++ {
		d := g.PointPosition(id).Sub(c).Norm()
		f[id] = math.Exp(-8 * d * d)
	}
	return g
}

func imageDiff(a, b *render.Image) (mean float64, worst float64) {
	n := 0
	for i := range a.Pix {
		for c := 0; c < 3; c++ {
			d := math.Abs(a.Pix[i][c] - b.Pix[i][c])
			mean += d
			if d > worst {
				worst = d
			}
			n++
		}
	}
	return mean / float64(n), worst
}

func TestDistributedRayTraceMatchesSerial(t *testing.T) {
	g := energyGrid(t)
	pool := par.NewPool(2)
	cam := render.OrbitCamera(g.Bounds(), 0.7, 0.4, 2.0)
	const w, h = 48, 48

	exSerial := viz.NewExec(pool)
	scene, err := raytrace.GatherScene(g, "energy", exSerial)
	if err != nil {
		t.Fatal(err)
	}
	// The distributed path normalizes colors by the global field range;
	// use the same normalization for the serial reference.
	lo, hi := mesh.FieldRange(g.PointField("energy"))
	scene.Norm = render.Normalizer{Lo: lo, Hi: hi}
	serial := scene.Render(cam, w, h, exSerial)

	for _, ranks := range []int{1, 2, 4} {
		got, results, err := RayTrace(energyGrid(t), "energy", ranks, cam, w, h, pool)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if len(results) != ranks {
			t.Fatalf("results = %d", len(results))
		}
		mean, worst := imageDiff(serial, got)
		if mean > 1e-3 || worst > 0.6 {
			t.Errorf("ranks=%d: composite diverges from serial (mean %.5f, worst %.3f)", ranks, mean, worst)
		}
		for _, r := range results {
			if r.Profile.IsZero() {
				t.Errorf("rank %d recorded no work", r.Rank)
			}
		}
	}
}

func TestDistributedVolumeRenderMatchesSerial(t *testing.T) {
	g := energyGrid(t)
	pool := par.NewPool(2)
	cam := render.OrbitCamera(g.Bounds(), 0.9, 0.35, 2.0)
	const w, h = 40, 40

	pf := g.PointField("energy")
	lo, hi := mesh.FieldRange(pf)
	tf := render.TransferFunction{Norm: render.Normalizer{Lo: lo, Hi: hi}, OpacityScale: 0.25}
	serial := volren.RenderImage(g, pf, tf, cam, w, h, viz.NewExec(pool))

	for _, ranks := range []int{1, 2, 4} {
		got, results, err := VolumeRender(energyGrid(t), "energy", ranks, cam, w, h, pool)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if len(results) != ranks {
			t.Fatalf("results = %d", len(results))
		}
		// Segment sampling restarts at slab boundaries, so the match is
		// approximate but must stay visually identical.
		mean, _ := imageDiff(serial, got)
		if mean > 0.02 {
			t.Errorf("ranks=%d: composite mean diff %.4f too large", ranks, mean)
		}
	}
}

func TestDistributedWorkImbalanceVisible(t *testing.T) {
	// A field concentrated in low z: low-z ranks do more contour-like
	// sampling work... here visible as unequal ray-tracing geometry work.
	g, err := mesh.NewCubeGrid(16)
	if err != nil {
		t.Fatal(err)
	}
	f := g.AddPointField("energy")
	for id := 0; id < g.NumPoints(); id++ {
		p := g.PointPosition(id)
		f[id] = math.Exp(-20 * p[2]) // all the structure near z=0
	}
	pool := par.NewPool(2)
	cam := render.OrbitCamera(g.Bounds(), 0.3, 0.5, 2.0)
	_, results, err := VolumeRender(g, "energy", 4, cam, 32, 32, pool)
	if err != nil {
		t.Fatal(err)
	}
	// The rank owning the energetic slab samples (and records) more
	// flops than the emptiest rank.
	minF, maxF := results[0].Profile.Flops, results[0].Profile.Flops
	for _, r := range results {
		if r.Profile.Flops < minF {
			minF = r.Profile.Flops
		}
		if r.Profile.Flops > maxF {
			maxF = r.Profile.Flops
		}
	}
	if maxF == minF {
		t.Error("no per-rank work imbalance despite a skewed field")
	}
}
