package dist

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mesh"
	"repro/internal/ops"
	"repro/internal/par"
	"repro/internal/render"
	"repro/internal/viz"
	"repro/internal/viz/raytrace"
	"repro/internal/viz/volren"
)

// RankResult carries one rank's measured work, for the power-scheduling
// experiments (imbalanced slabs yield imbalanced profiles).
type RankResult struct {
	Rank    int
	Profile ops.Profile
}

// encodeSurface flattens an image with depth to the fabric payload
// (r, g, b, a, depth per pixel).
func encodeSurface(im *render.Image) []float64 {
	out := make([]float64, 0, len(im.Pix)*5)
	for i, c := range im.Pix {
		out = append(out, c[0], c[1], c[2], c[3], im.Depth[i])
	}
	return out
}

// RayTrace renders the scene with nRanks ranks, each owning one z-slab,
// and composites by nearest depth (sort-last surface compositing). The
// result matches the single-node rendering: every exterior surface
// triangle belongs to exactly one rank, and the interior partition walls
// each rank's slab adds are always occluded by the true surface.
func RayTrace(g *mesh.UniformGrid, field string, nRanks int, cam render.Camera, w, h int, pool *par.Pool) (*render.Image, []RankResult, error) {
	return RayTraceWith(g, field, nRanks, cam, w, h, pool, Options{})
}

// RayTraceWith is RayTrace on a fabric with explicit Options (buffer
// capacity, send deadlines, fault injection). A rank failure cancels the
// whole composite and surfaces as an *AbortError naming the rank.
func RayTraceWith(g *mesh.UniformGrid, field string, nRanks int, cam render.Camera, w, h int, pool *par.Pool, opts Options) (*render.Image, []RankResult, error) {
	// Global color normalization: every rank must map scalars to colors
	// identically, so the range comes from the whole field, not a slab.
	pf := g.PointField(field)
	if pf == nil {
		var err error
		pf, err = g.CellToPoint(field)
		if err != nil {
			return nil, nil, err
		}
	}
	lo, hi := mesh.FieldRange(pf)
	norm := render.Normalizer{Lo: lo, Hi: hi}

	slabs, err := mesh.SlabDecompose(g, nRanks)
	if err != nil {
		return nil, nil, err
	}
	comm, err := NewCommWith(nRanks, opts)
	if err != nil {
		return nil, nil, err
	}
	results := make([]RankResult, nRanks)
	var out *render.Image
	var outMu sync.Mutex
	err = comm.Run(func(ep *Endpoint) error {
		ex := viz.NewExec(pool)
		scene, err := raytrace.GatherScene(slabs[ep.Rank()], field, ex)
		if err != nil {
			return err
		}
		scene.Norm = norm
		im := scene.Render(cam, w, h, ex)
		results[ep.Rank()] = RankResult{Rank: ep.Rank(), Profile: ex.Drain()}
		gathered, err := ep.Gather(0, 1, encodeSurface(im))
		if err != nil {
			return err
		}
		if ep.Rank() != 0 {
			return nil
		}
		final := render.NewImage(w, h)
		final.Fill(render.Color{0.08, 0.08, 0.10, 1})
		for _, payload := range gathered {
			if len(payload) != w*h*5 {
				return fmt.Errorf("bad payload size %d", len(payload))
			}
			for p := 0; p < w*h; p++ {
				d := payload[p*5+4]
				if d < final.Depth[p] && !math.IsInf(d, 1) {
					final.Depth[p] = d
					final.Pix[p] = render.Color{payload[p*5], payload[p*5+1], payload[p*5+2], payload[p*5+3]}
				}
			}
		}
		outMu.Lock()
		out = final
		outMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, results, nil
}

// encodeSegments flattens a premultiplied segment image (r, g, b, a).
func encodeSegments(im *render.Image) []float64 {
	out := make([]float64, 0, len(im.Pix)*4)
	for _, c := range im.Pix {
		out = append(out, c[0], c[1], c[2], c[3])
	}
	return out
}

// VolumeRender renders the volume with nRanks z-slab ranks and composites
// the per-rank ray segments front to back (sort-last ordered alpha
// compositing). For axis-aligned slabs the per-pixel order is slab order
// when the ray points toward +z and the reverse otherwise. The transfer
// function is built from the global field range so every rank colors
// identically.
func VolumeRender(g *mesh.UniformGrid, field string, nRanks int, cam render.Camera, w, h int, pool *par.Pool) (*render.Image, []RankResult, error) {
	return VolumeRenderWith(g, field, nRanks, cam, w, h, pool, Options{})
}

// VolumeRenderWith is VolumeRender on a fabric with explicit Options. A
// rank failure cancels the whole composite and surfaces as an
// *AbortError naming the rank.
func VolumeRenderWith(g *mesh.UniformGrid, field string, nRanks int, cam render.Camera, w, h int, pool *par.Pool, opts Options) (*render.Image, []RankResult, error) {
	pf := g.PointField(field)
	if pf == nil {
		var err error
		pf, err = g.CellToPoint(field)
		if err != nil {
			return nil, nil, err
		}
	}
	lo, hi := mesh.FieldRange(pf)
	tf := render.TransferFunction{Norm: render.Normalizer{Lo: lo, Hi: hi}, OpacityScale: 0.25}

	slabs, err := mesh.SlabDecompose(g, nRanks)
	if err != nil {
		return nil, nil, err
	}
	comm, err := NewCommWith(nRanks, opts)
	if err != nil {
		return nil, nil, err
	}
	results := make([]RankResult, nRanks)
	var out *render.Image
	var outMu sync.Mutex
	err = comm.Run(func(ep *Endpoint) error {
		slab := slabs[ep.Rank()]
		slabField := slab.PointField(field)
		if slabField == nil {
			var err error
			slabField, err = slab.CellToPoint(field)
			if err != nil {
				return err
			}
		}
		ex := viz.NewExec(pool)
		im := volren.RenderSegments(slab, slabField, tf, cam, w, h, ex)
		results[ep.Rank()] = RankResult{Rank: ep.Rank(), Profile: ex.Drain()}
		gathered, err := ep.Gather(0, 2, encodeSegments(im))
		if err != nil {
			return err
		}
		if ep.Rank() != 0 {
			return nil
		}
		final := render.NewImage(w, h)
		fr := cam.Frame(w, h) // one camera frame for the whole composite
		for p := 0; p < w*h; p++ {
			px, py := p%w, p/w
			_, dir := fr.Ray(px, py)
			var cr, cg, cb, alpha float64
			for k := 0; k < nRanks; k++ {
				r := k
				if dir[2] < 0 {
					r = nRanks - 1 - k // far slabs first along -z rays
				}
				seg := gathered[r]
				sa := seg[p*4+3]
				if sa == 0 {
					continue
				}
				weight := 1 - alpha
				cr += weight * seg[p*4]
				cg += weight * seg[p*4+1]
				cb += weight * seg[p*4+2]
				alpha += weight * sa
			}
			final.Pix[p] = render.Color{cr, cg, cb, alpha}
		}
		volren.BlendBackground(final)
		outMu.Lock()
		out = final
		outMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, results, nil
}
