package cinema

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/render"
	"repro/internal/viz"
	"repro/internal/viz/raytrace"
	"repro/internal/viz/volren"
)

func TestDatabaseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "test-db", "Volume Rendering")
	if err != nil {
		t.Fatal(err)
	}
	im := render.NewImage(8, 8)
	im.Fill(render.Color{0.5, 0.2, 0.1, 1})
	if err := db.Add(0, 0, im); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(1, math.Pi, im); err != nil {
		t.Fatal(err)
	}
	db.NextCycle()
	if err := db.Add(0, 0.5, im); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name != "test-db" || idx.Algorithm != "Volume Rendering" {
		t.Errorf("manifest = %+v", idx)
	}
	if len(idx.Entries) != 3 {
		t.Fatalf("entries = %d", len(idx.Entries))
	}
	if idx.Entries[2].Cycle != 1 {
		t.Errorf("third entry cycle = %d, want 1", idx.Entries[2].Cycle)
	}
	if idx.Width != 8 || idx.Height != 8 {
		t.Errorf("dimensions = %dx%d", idx.Width, idx.Height)
	}
	for _, e := range idx.Entries {
		if _, err := os.Stat(filepath.Join(dir, e.File)); err != nil {
			t.Errorf("missing image %s: %v", e.File, err)
		}
	}
}

func testGrid(t testing.TB) *mesh.UniformGrid {
	t.Helper()
	g, err := mesh.NewCubeGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	f := g.AddPointField("energy")
	for id := 0; id < g.NumPoints(); id++ {
		p := g.PointPosition(id)
		f[id] = p[0] + p[1] + p[2]
	}
	return g
}

func TestSinkCollectsVolrenOrbit(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "orbit", "Volume Rendering")
	if err != nil {
		t.Fatal(err)
	}
	f := volren.New(volren.Options{
		Field: "energy", Images: 5, Width: 12, Height: 12, Sink: db.Sink(),
	})
	if _, err := f.Run(testGrid(t), viz.NewExec(par.NewPool(2))); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5 {
		t.Fatalf("collected %d images, want 5", db.Len())
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Azimuths are the orbit positions, ascending within the cycle.
	for i := 1; i < len(idx.Entries); i++ {
		if idx.Entries[i].AzimuthRad <= idx.Entries[i-1].AzimuthRad {
			t.Errorf("azimuths not ascending: %v", idx.Entries)
		}
	}
}

func TestSinkCollectsRaytraceOrbit(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "orbit", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	f := raytrace.New(raytrace.Options{
		Field: "energy", Images: 4, Width: 12, Height: 12, Sink: db.Sink(),
	})
	if _, err := f.Run(testGrid(t), viz.NewExec(par.NewPool(2))); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4 {
		t.Fatalf("collected %d images, want 4", db.Len())
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("missing index accepted")
	}
}

func TestAddFailsOnUnwritableDir(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "x", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the database.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	im := render.NewImage(4, 4)
	if err := db.Add(0, 0, im); err == nil {
		t.Error("Add into a removed directory succeeded")
	}
	// The sink swallows the error, but Finalize must surface it.
	if err := db.Finalize(); err == nil {
		t.Error("Finalize hid the failed image write")
	}
}

func TestSinkErrorSurfacesAtFinalize(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "x", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	sink := db.Sink()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	sink(0, 0, render.NewImage(4, 4))
	if err := db.Finalize(); err == nil {
		t.Error("Finalize passed despite a failed sink write")
	}
}

func TestLoadRejectsCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupt index accepted")
	}
}
