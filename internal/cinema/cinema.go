// Package cinema writes orbit image databases in the spirit of the Cinema
// specification from the in situ community: the paper's ray-tracing and
// volume-rendering workloads each produce "an image database consisting of
// 50 images per visualization cycle generated from different camera
// positions around the data set" — this package persists that product as
// numbered PNG files plus a JSON index mapping each image to its camera
// parameters, so a post hoc viewer can scrub around the object without
// re-rendering.
//
// PNG encoding is far slower than the render that produced the frame, so
// the database can pipeline it: StartAsync moves encode+write onto a
// bounded worker queue and the render loop only pays the channel send.
// Finalize drains the queue and sorts the manifest by (cycle, index), so
// the persisted index.json is identical whether encoding was synchronous
// or pipelined.
//
// A Database tolerates concurrent producers: Add, AddAt, NewCycle, and
// Len may be called from multiple goroutines (the serving daemon shares
// one database across in-flight requests). Finalize always persists the
// manifest of every successfully stored frame, even when some frames
// failed to encode — the failures are collected (all of them, joined)
// and returned alongside the written index rather than orphaning the
// images that did land on disk.
package cinema

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/render"
)

// ErrFinalized is returned by Add/AddAt after Finalize: the encode queue
// is gone and the manifest is written, so late frames are a caller bug —
// they must fail loudly instead of silently re-entering synchronous mode.
var ErrFinalized = errors.New("cinema: database already finalized")

// Entry describes one stored image.
type Entry struct {
	File       string  `json:"file"`
	Index      int     `json:"index"`
	AzimuthRad float64 `json:"azimuth_rad"`
	Cycle      int     `json:"cycle"`
}

// Index is the database manifest.
type Index struct {
	Name      string  `json:"name"`
	Algorithm string  `json:"algorithm"`
	Width     int     `json:"width"`
	Height    int     `json:"height"`
	Entries   []Entry `json:"entries"`
}

// Database accumulates images into a directory.
type Database struct {
	dir string

	mu        sync.Mutex // guards everything below
	cycle     int
	index     Index
	errs      []error        // every failed store, in completion order
	jobs      chan encodeJob // nil until StartAsync
	finalized bool
	producers sync.WaitGroup // Adds holding a reference to jobs

	wg sync.WaitGroup // encode workers
}

type encodeJob struct {
	name       string
	index      int
	azimuthRad float64
	cycle      int
	im         *render.Image
}

// New creates (or reuses) the database directory.
func New(dir, name, algorithm string) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Database{
		dir:   dir,
		index: Index{Name: name, Algorithm: algorithm},
	}, nil
}

// StartAsync switches the database to pipelined encoding: Add enqueues
// onto a bounded channel (depth frames of backpressure) and workers
// encode and write concurrently with the render loop. Images handed to
// Add/Sink after this call are owned by the database until written —
// callers must not reuse them. workers <= 0 picks a small default from
// the machine size; depth <= 0 defaults to twice the workers. A second
// call before Finalize is a no-op.
func (d *Database) StartAsync(workers, depth int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.jobs != nil || d.finalized {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU() / 2
		if workers < 1 {
			workers = 1
		}
		if workers > 4 {
			workers = 4
		}
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	d.jobs = make(chan encodeJob, depth)
	// Workers must range over a captured copy: Finalize nils d.jobs before
	// closing the channel, and a worker scheduled late would otherwise read
	// the nil field and block forever.
	jobs := d.jobs
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for j := range jobs {
				d.store(j)
			}
		}()
	}
}

// Sink returns a function with the signature the render filters accept
// (raytrace.Options.Sink / volren.Options.Sink). Write errors surface at
// Finalize.
func (d *Database) Sink() func(index int, azimuthRad float64, im *render.Image) {
	return func(index int, azimuthRad float64, im *render.Image) {
		_ = d.Add(index, azimuthRad, im)
	}
}

// Add stores one image under the database's current cycle — immediately
// when synchronous, or by handing the frame to the encode queue when
// StartAsync is active (in which case the returned error is nil and
// failures surface at Finalize). Adding to a finalized database returns
// ErrFinalized. Safe for concurrent use.
func (d *Database) Add(index int, azimuthRad float64, im *render.Image) error {
	return d.AddAt(-1, index, azimuthRad, im)
}

// AddAt is Add with an explicit visualization-cycle tag (cycle >= 0);
// cycle < 0 uses the database's current cycle. Concurrent producers that
// each own a cycle (NewCycle) use it so their frames tag consistently no
// matter how their Adds interleave with other requests' NewCycle calls.
func (d *Database) AddAt(cycle, index int, azimuthRad float64, im *render.Image) error {
	d.mu.Lock()
	if d.finalized {
		d.mu.Unlock()
		return ErrFinalized
	}
	if cycle < 0 {
		cycle = d.cycle
	}
	jobs := d.jobs
	if jobs != nil {
		// Register as an in-flight producer before dropping the lock:
		// Finalize waits for registered producers before closing the
		// queue, so this send can never hit a closed channel. The send
		// itself happens outside the lock — a full queue must block on
		// the encode workers, not on the mutex those workers need to
		// append manifest entries.
		d.producers.Add(1)
		d.mu.Unlock()
		defer d.producers.Done()
		jobs <- encodeJob{
			name:       FrameName(cycle, index),
			index:      index,
			azimuthRad: azimuthRad,
			cycle:      cycle,
			im:         im,
		}
		return nil
	}
	d.mu.Unlock()
	return d.store(encodeJob{
		name:       FrameName(cycle, index),
		index:      index,
		azimuthRad: azimuthRad,
		cycle:      cycle,
		im:         im,
	})
}

// FrameName is the canonical frame file name for (cycle, index); callers
// that list frames without reading the manifest (the serving daemon's
// /cinema response) use it to predict where a frame will land.
func FrameName(cycle, index int) string {
	return fmt.Sprintf("c%03d_i%03d.png", cycle, index)
}

// store encodes and writes one frame, appending its manifest entry on
// success and recording the failure on error.
func (d *Database) store(j encodeJob) error {
	err := d.writePNG(j)
	d.mu.Lock()
	if err != nil {
		d.errs = append(d.errs, fmt.Errorf("cinema: %s: %w", j.name, err))
	} else {
		if d.index.Width == 0 {
			d.index.Width, d.index.Height = j.im.W, j.im.H
		}
		d.index.Entries = append(d.index.Entries, Entry{
			File: j.name, Index: j.index, AzimuthRad: j.azimuthRad, Cycle: j.cycle,
		})
	}
	d.mu.Unlock()
	return err
}

func (d *Database) writePNG(j encodeJob) error {
	f, err := os.Create(filepath.Join(d.dir, j.name))
	if err != nil {
		return err
	}
	if err := j.im.WritePNG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// NextCycle advances the visualization-cycle tag for subsequent images.
// Safe for concurrent use; producers that need to know which cycle they
// own should use NewCycle instead.
func (d *Database) NextCycle() {
	d.mu.Lock()
	d.cycle++
	d.mu.Unlock()
}

// NewCycle atomically claims a fresh cycle tag and returns it: the
// current cycle is advanced past the returned value, so each concurrent
// producer gets a private cycle to AddAt into.
func (d *Database) NewCycle() int {
	d.mu.Lock()
	c := d.cycle
	d.cycle++
	d.mu.Unlock()
	return c
}

// Len returns the number of images stored so far (queued frames count
// once written; call after Finalize for the settled total).
func (d *Database) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index.Entries)
}

// Finalize drains the encode queue (when async), sorts the manifest into
// its deterministic (cycle, index) order, and always writes index.json —
// every frame that did store stays reachable even when others failed.
// The returned error joins every failed store plus any manifest write
// error; nil means every frame and the index landed. Finalize is
// idempotent; Add/AddAt afterwards return ErrFinalized.
func (d *Database) Finalize() error {
	d.mu.Lock()
	if d.finalized {
		errs := d.errs
		d.mu.Unlock()
		return errors.Join(errs...)
	}
	d.finalized = true
	jobs := d.jobs
	d.jobs = nil
	d.mu.Unlock()
	if jobs != nil {
		// Producers registered before finalized was set may still be
		// blocked sending; wait them out, then close so the workers
		// drain and exit.
		d.producers.Wait()
		close(jobs)
		d.wg.Wait()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sort.SliceStable(d.index.Entries, func(i, j int) bool {
		a, b := d.index.Entries[i], d.index.Entries[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Index < b.Index
	})
	data, err := json.MarshalIndent(d.index, "", "  ")
	if err != nil {
		d.errs = append(d.errs, err)
		return errors.Join(d.errs...)
	}
	if err := os.WriteFile(filepath.Join(d.dir, "index.json"), data, 0o644); err != nil {
		d.errs = append(d.errs, err)
	}
	return errors.Join(d.errs...)
}

// Load reads a database manifest back (for viewers and tests).
func Load(dir string) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, err
	}
	var idx Index
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, err
	}
	return &idx, nil
}
