// Package cinema writes orbit image databases in the spirit of the Cinema
// specification from the in situ community: the paper's ray-tracing and
// volume-rendering workloads each produce "an image database consisting of
// 50 images per visualization cycle generated from different camera
// positions around the data set" — this package persists that product as
// numbered PNG files plus a JSON index mapping each image to its camera
// parameters, so a post hoc viewer can scrub around the object without
// re-rendering.
package cinema

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/render"
)

// Entry describes one stored image.
type Entry struct {
	File       string  `json:"file"`
	Index      int     `json:"index"`
	AzimuthRad float64 `json:"azimuth_rad"`
	Cycle      int     `json:"cycle"`
}

// Index is the database manifest.
type Index struct {
	Name      string  `json:"name"`
	Algorithm string  `json:"algorithm"`
	Width     int     `json:"width"`
	Height    int     `json:"height"`
	Entries   []Entry `json:"entries"`
}

// Database accumulates images into a directory.
type Database struct {
	dir   string
	index Index
	cycle int
}

// New creates (or reuses) the database directory.
func New(dir, name, algorithm string) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Database{
		dir:   dir,
		index: Index{Name: name, Algorithm: algorithm},
	}, nil
}

// Sink returns a function with the signature the render filters accept
// (raytrace.Options.Sink / volren.Options.Sink); each delivered image is
// written immediately. Write errors surface at Finalize.
func (d *Database) Sink() func(index int, azimuthRad float64, im *render.Image) {
	return func(index int, azimuthRad float64, im *render.Image) {
		_ = d.Add(index, azimuthRad, im)
	}
}

// Add stores one image.
func (d *Database) Add(index int, azimuthRad float64, im *render.Image) error {
	name := fmt.Sprintf("c%03d_i%03d.png", d.cycle, index)
	f, err := os.Create(filepath.Join(d.dir, name))
	if err != nil {
		d.index.Entries = append(d.index.Entries, Entry{File: "ERROR:" + err.Error()})
		return err
	}
	if err := im.WritePNG(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if d.index.Width == 0 {
		d.index.Width, d.index.Height = im.W, im.H
	}
	d.index.Entries = append(d.index.Entries, Entry{
		File: name, Index: index, AzimuthRad: azimuthRad, Cycle: d.cycle,
	})
	return nil
}

// NextCycle advances the visualization-cycle tag for subsequent images.
func (d *Database) NextCycle() { d.cycle++ }

// Len returns the number of stored images.
func (d *Database) Len() int { return len(d.index.Entries) }

// Finalize writes index.json and reports any image that failed to store.
func (d *Database) Finalize() error {
	for _, e := range d.index.Entries {
		if len(e.File) > 6 && e.File[:6] == "ERROR:" {
			return fmt.Errorf("cinema: image write failed: %s", e.File[6:])
		}
	}
	data, err := json.MarshalIndent(d.index, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(d.dir, "index.json"), data, 0o644)
}

// Load reads a database manifest back (for viewers and tests).
func Load(dir string) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, err
	}
	var idx Index
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, err
	}
	return &idx, nil
}
