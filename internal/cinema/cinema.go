// Package cinema writes orbit image databases in the spirit of the Cinema
// specification from the in situ community: the paper's ray-tracing and
// volume-rendering workloads each produce "an image database consisting of
// 50 images per visualization cycle generated from different camera
// positions around the data set" — this package persists that product as
// numbered PNG files plus a JSON index mapping each image to its camera
// parameters, so a post hoc viewer can scrub around the object without
// re-rendering.
//
// PNG encoding is far slower than the render that produced the frame, so
// the database can pipeline it: StartAsync moves encode+write onto a
// bounded worker queue and the render loop only pays the channel send.
// Finalize drains the queue and sorts the manifest by (cycle, index), so
// the persisted index.json is identical whether encoding was synchronous
// or pipelined.
package cinema

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/render"
)

// Entry describes one stored image.
type Entry struct {
	File       string  `json:"file"`
	Index      int     `json:"index"`
	AzimuthRad float64 `json:"azimuth_rad"`
	Cycle      int     `json:"cycle"`
}

// Index is the database manifest.
type Index struct {
	Name      string  `json:"name"`
	Algorithm string  `json:"algorithm"`
	Width     int     `json:"width"`
	Height    int     `json:"height"`
	Entries   []Entry `json:"entries"`
}

// Database accumulates images into a directory.
type Database struct {
	dir   string
	cycle int

	mu    sync.Mutex // guards index while encode workers append entries
	index Index

	jobs chan encodeJob // nil until StartAsync
	wg   sync.WaitGroup
}

type encodeJob struct {
	name       string
	index      int
	azimuthRad float64
	cycle      int
	im         *render.Image
}

// New creates (or reuses) the database directory.
func New(dir, name, algorithm string) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Database{
		dir:   dir,
		index: Index{Name: name, Algorithm: algorithm},
	}, nil
}

// StartAsync switches the database to pipelined encoding: Add enqueues
// onto a bounded channel (depth frames of backpressure) and workers
// encode and write concurrently with the render loop. Images handed to
// Add/Sink after this call are owned by the database until written —
// callers must not reuse them. workers <= 0 picks a small default from
// the machine size; depth <= 0 defaults to twice the workers. A second
// call before Finalize is a no-op.
func (d *Database) StartAsync(workers, depth int) {
	if d.jobs != nil {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU() / 2
		if workers < 1 {
			workers = 1
		}
		if workers > 4 {
			workers = 4
		}
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	d.jobs = make(chan encodeJob, depth)
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for j := range d.jobs {
				d.store(j)
			}
		}()
	}
}

// Sink returns a function with the signature the render filters accept
// (raytrace.Options.Sink / volren.Options.Sink). Write errors surface at
// Finalize.
func (d *Database) Sink() func(index int, azimuthRad float64, im *render.Image) {
	return func(index int, azimuthRad float64, im *render.Image) {
		_ = d.Add(index, azimuthRad, im)
	}
}

// Add stores one image — immediately when synchronous, or by handing the
// frame to the encode queue when StartAsync is active (in which case the
// returned error is always nil and failures surface at Finalize).
func (d *Database) Add(index int, azimuthRad float64, im *render.Image) error {
	j := encodeJob{
		name:       fmt.Sprintf("c%03d_i%03d.png", d.cycle, index),
		index:      index,
		azimuthRad: azimuthRad,
		cycle:      d.cycle,
		im:         im,
	}
	if d.jobs != nil {
		d.jobs <- j
		return nil
	}
	return d.store(j)
}

// store encodes and writes one frame and appends its manifest entry; a
// failure is recorded as an ERROR entry so Finalize can report it.
func (d *Database) store(j encodeJob) error {
	entry := Entry{File: j.name, Index: j.index, AzimuthRad: j.azimuthRad, Cycle: j.cycle}
	err := d.writePNG(j)
	if err != nil {
		entry.File = "ERROR:" + err.Error()
	}
	d.mu.Lock()
	if err == nil && d.index.Width == 0 {
		d.index.Width, d.index.Height = j.im.W, j.im.H
	}
	d.index.Entries = append(d.index.Entries, entry)
	d.mu.Unlock()
	return err
}

func (d *Database) writePNG(j encodeJob) error {
	f, err := os.Create(filepath.Join(d.dir, j.name))
	if err != nil {
		return err
	}
	if err := j.im.WritePNG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// NextCycle advances the visualization-cycle tag for subsequent images.
func (d *Database) NextCycle() { d.cycle++ }

// Len returns the number of images handed over so far (queued frames
// count once stored; call after Finalize for the settled total).
func (d *Database) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index.Entries)
}

// Finalize drains the encode queue (when async), sorts the manifest into
// its deterministic (cycle, index) order, writes index.json, and reports
// any image that failed to store.
func (d *Database) Finalize() error {
	if d.jobs != nil {
		close(d.jobs)
		d.wg.Wait()
		d.jobs = nil
	}
	sort.SliceStable(d.index.Entries, func(i, j int) bool {
		a, b := d.index.Entries[i], d.index.Entries[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Index < b.Index
	})
	for _, e := range d.index.Entries {
		if strings.HasPrefix(e.File, "ERROR:") {
			return fmt.Errorf("cinema: image write failed: %s", e.File[6:])
		}
	}
	data, err := json.MarshalIndent(d.index, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(d.dir, "index.json"), data, 0o644)
}

// Load reads a database manifest back (for viewers and tests).
func Load(dir string) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, err
	}
	var idx Index
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, err
	}
	return &idx, nil
}
