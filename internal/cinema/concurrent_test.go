package cinema

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// A run where some frames fail to encode must still persist the manifest
// for every frame that did land, and the returned error must carry every
// failure, not just the first.
func TestFinalizeWritesManifestDespiteFailures(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "partial", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	// Two good frames, two doomed ones (a directory squats on each doomed
	// frame's file name, so os.Create fails regardless of privileges), then
	// two more good ones.
	for i := 0; i < 2; i++ {
		if err := db.Add(i, float64(i), frameImage(i, 4, 4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i < 4; i++ {
		if err := os.Mkdir(filepath.Join(dir, FrameName(0, i)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i < 4; i++ {
		if err := db.Add(i, float64(i), frameImage(i, 4, 4)); err == nil {
			t.Fatalf("Add(%d) onto a squatted name succeeded", i)
		}
	}
	for i := 4; i < 6; i++ {
		if err := db.Add(i, float64(i), frameImage(i, 4, 4)); err != nil {
			t.Fatal(err)
		}
	}
	ferr := db.Finalize()
	if ferr == nil {
		t.Fatal("Finalize returned nil despite two failed frames")
	}
	// All failures collected: both doomed frames named in the joined error.
	msg := ferr.Error()
	for _, want := range []string{"c000_i002.png", "c000_i003.png"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing failure for %s: %v", want, ferr)
		}
	}
	// The manifest exists and indexes exactly the four stored frames.
	idx, err := Load(dir)
	if err != nil {
		t.Fatalf("manifest not written despite successful frames: %v", err)
	}
	if len(idx.Entries) != 4 {
		t.Fatalf("manifest entries = %d, want 4", len(idx.Entries))
	}
	for _, e := range idx.Entries {
		if strings.HasPrefix(e.File, "ERROR:") {
			t.Errorf("manifest leaked an error marker entry: %+v", e)
		}
		if _, err := os.Stat(filepath.Join(dir, e.File)); err != nil {
			t.Errorf("manifest names a missing image %s: %v", e.File, err)
		}
	}
}

// Add after Finalize is a typed error, not a silent fall-back into
// synchronous mode.
func TestAddAfterFinalizeTypedError(t *testing.T) {
	for _, async := range []bool{false, true} {
		dir := t.TempDir()
		db, err := New(dir, "late", "Ray Tracing")
		if err != nil {
			t.Fatal(err)
		}
		if async {
			db.StartAsync(2, 2)
		}
		if err := db.Add(0, 0, frameImage(0, 4, 4)); err != nil {
			t.Fatal(err)
		}
		if err := db.Finalize(); err != nil {
			t.Fatal(err)
		}
		err = db.Add(1, 0, frameImage(1, 4, 4))
		if !errors.Is(err, ErrFinalized) {
			t.Errorf("async=%v: Add after Finalize = %v, want ErrFinalized", async, err)
		}
		// Idempotent Finalize keeps returning the settled result.
		if err := db.Finalize(); err != nil {
			t.Errorf("async=%v: repeated Finalize = %v", async, err)
		}
		// The late frame is not in the manifest and not on disk.
		idx, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx.Entries) != 1 {
			t.Errorf("async=%v: entries = %d, want 1", async, len(idx.Entries))
		}
	}
}

// Concurrent producers that each claim a cycle with NewCycle and AddAt
// into it must neither race nor cross-tag frames. Run under -race.
func TestConcurrentProducersOwnCycles(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "cycles", "Volume Rendering")
	if err != nil {
		t.Fatal(err)
	}
	db.StartAsync(3, 2)
	const producers, frames = 8, 5
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cyc := db.NewCycle()
			for i := 0; i < frames; i++ {
				if err := db.AddAt(cyc, i, float64(i), frameImage(cyc*frames+i, 4, 4)); err != nil {
					t.Errorf("AddAt(cycle %d, %d): %v", cyc, i, err)
				}
			}
		}()
	}
	wg.Wait()
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != producers*frames {
		t.Fatalf("entries = %d, want %d", len(idx.Entries), producers*frames)
	}
	// Each cycle holds exactly frames entries with indices 0..frames-1,
	// sorted — the deterministic manifest order survives concurrency.
	perCycle := make(map[int][]int)
	for _, e := range idx.Entries {
		perCycle[e.Cycle] = append(perCycle[e.Cycle], e.Index)
	}
	if len(perCycle) != producers {
		t.Fatalf("cycles = %d, want %d", len(perCycle), producers)
	}
	for cyc, idxs := range perCycle {
		if len(idxs) != frames {
			t.Errorf("cycle %d has %d frames, want %d", cyc, len(idxs), frames)
		}
		for i, v := range idxs {
			if v != i {
				t.Errorf("cycle %d entry %d has index %d; manifest unsorted", cyc, i, v)
				break
			}
		}
	}
}

// Concurrent Add and NextCycle on the synchronous path must be free of
// data races (the server shares one database across requests). Run
// under -race; tags may interleave but every frame must store.
func TestConcurrentAddNextCycle(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "race", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 6
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				// Distinct index per producer so file names never collide
				// regardless of which cycle tag an Add observes.
				if err := db.Add(p*10+i, 0, frameImage(i, 4, 4)); err != nil {
					t.Errorf("Add: %v", err)
				}
				db.NextCycle()
			}
		}(p)
	}
	wg.Wait()
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != n*4 {
		t.Fatalf("stored %d frames, want %d", db.Len(), n*4)
	}
}
