package cinema

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/par"
	"repro/internal/render"
	"repro/internal/viz"
	"repro/internal/viz/volren"
)

func frameImage(i int, w, h int) *render.Image {
	im := render.NewImage(w, h)
	im.Fill(render.Color{float64(i%7) / 7, float64(i%5) / 5, float64(i%3) / 3, 1})
	return im
}

// The pipelined encoder must persist exactly the manifest the synchronous
// path writes: same entries in the same (cycle, index) order, same image
// bytes on disk.
func TestAsyncMatchesSyncDatabase(t *testing.T) {
	syncDir, asyncDir := t.TempDir(), t.TempDir()
	sdb, err := New(syncDir, "orbit", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	adb, err := New(asyncDir, "orbit", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	adb.StartAsync(3, 2)
	for cyc := 0; cyc < 2; cyc++ {
		for i := 0; i < 9; i++ {
			az := float64(i) * 0.7
			if err := sdb.Add(i, az, frameImage(cyc*9+i, 10, 6)); err != nil {
				t.Fatal(err)
			}
			if err := adb.Add(i, az, frameImage(cyc*9+i, 10, 6)); err != nil {
				t.Fatal(err)
			}
		}
		sdb.NextCycle()
		adb.NextCycle()
	}
	if err := sdb.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := adb.Finalize(); err != nil {
		t.Fatal(err)
	}
	sIdx, err := Load(syncDir)
	if err != nil {
		t.Fatal(err)
	}
	aIdx, err := Load(asyncDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sIdx.Entries) != len(aIdx.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(sIdx.Entries), len(aIdx.Entries))
	}
	if sIdx.Width != aIdx.Width || sIdx.Height != aIdx.Height {
		t.Errorf("dimensions differ: %dx%d vs %dx%d", sIdx.Width, sIdx.Height, aIdx.Width, aIdx.Height)
	}
	for i := range sIdx.Entries {
		if sIdx.Entries[i] != aIdx.Entries[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, sIdx.Entries[i], aIdx.Entries[i])
		}
		sPix, err := os.ReadFile(filepath.Join(syncDir, sIdx.Entries[i].File))
		if err != nil {
			t.Fatal(err)
		}
		aPix, err := os.ReadFile(filepath.Join(asyncDir, aIdx.Entries[i].File))
		if err != nil {
			t.Fatal(err)
		}
		if string(sPix) != string(aPix) {
			t.Fatalf("image bytes differ for %s", sIdx.Entries[i].File)
		}
	}
}

// The encode queue is exercised from several producers at once (more
// contention than the render loop generates); run under -race via the
// Makefile race target.
func TestAsyncConcurrentProducers(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "orbit", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	db.StartAsync(4, 3)
	var wg sync.WaitGroup
	const producers, each = 4, 10
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				idx := p*each + i
				if err := db.Add(idx, float64(idx), frameImage(idx, 6, 6)); err != nil {
					t.Errorf("Add(%d): %v", idx, err)
				}
			}
		}(p)
	}
	wg.Wait()
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != producers*each {
		t.Fatalf("entries = %d, want %d", len(idx.Entries), producers*each)
	}
	for i, e := range idx.Entries {
		if e.Index != i {
			t.Fatalf("entry %d has index %d; manifest not sorted", i, e.Index)
		}
		if _, err := os.Stat(filepath.Join(dir, e.File)); err != nil {
			t.Errorf("missing image %s: %v", e.File, err)
		}
	}
}

// Async write failures must surface at Finalize, like synchronous ones.
func TestAsyncErrorSurfacesAtFinalize(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "x", "Ray Tracing")
	if err != nil {
		t.Fatal(err)
	}
	db.StartAsync(2, 2)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Add(i, 0, frameImage(i, 4, 4)); err != nil {
			t.Fatalf("async Add must defer errors, got %v", err)
		}
	}
	if err := db.Finalize(); err == nil {
		t.Error("Finalize hid the failed async writes")
	}
}

// The volren orbit drives the pipelined sink end to end.
func TestAsyncSinkCollectsOrbit(t *testing.T) {
	dir := t.TempDir()
	db, err := New(dir, "orbit", "Volume Rendering")
	if err != nil {
		t.Fatal(err)
	}
	db.StartAsync(0, 0)
	f := volren.New(volren.Options{
		Field: "energy", Images: 6, Width: 12, Height: 12, Sink: db.Sink(),
	})
	if _, err := f.Run(testGrid(t), viz.NewExec(par.NewPool(2))); err != nil {
		t.Fatal(err)
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	idx, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != 6 {
		t.Fatalf("entries = %d, want 6", len(idx.Entries))
	}
	for i := 1; i < len(idx.Entries); i++ {
		if idx.Entries[i].AzimuthRad <= idx.Entries[i-1].AzimuthRad {
			t.Errorf("azimuths not ascending after drain: %v", idx.Entries)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("c000_i%03d.png", i))); err != nil {
			t.Errorf("missing frame %d: %v", i, err)
		}
	}
}
