package telemetry

import "testing"

// TestNewServing checks the request-lane tracer layout: pipeline track,
// one track per worker, then named request lanes.
func TestNewServing(t *testing.T) {
	const workers, lanes = 4, 3
	tr := NewServing(workers, lanes)
	if got, want := tr.Tracks(), 1+workers+lanes; got != want {
		t.Fatalf("Tracks() = %d, want %d", got, want)
	}
	for l := 0; l < lanes; l++ {
		track := LaneTrack(workers, l)
		if track != workers+1+l {
			t.Errorf("LaneTrack(%d, %d) = %d, want %d", workers, l, track, workers+1+l)
		}
		if name := tr.TrackName(track); name == "" {
			t.Errorf("lane %d unnamed", l)
		}
	}
	// Lanes must not collide with the worker tracks.
	if LaneTrack(workers, 0) <= WorkerTrack(workers-1) {
		t.Error("first lane track collides with last worker track")
	}

	// Spans land on lane tracks like any other.
	start := tr.Begin()
	tr.End(LaneTrack(workers, 1), "serve.render", start)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Track != int32(LaneTrack(workers, 1)) {
		t.Fatalf("spans = %+v", spans)
	}

	// Degenerate lane counts clamp instead of panicking.
	if tr := NewServing(2, -5); tr.Tracks() != 3 {
		t.Errorf("negative lanes: Tracks() = %d, want 3", tr.Tracks())
	}
}
