package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// chromeGolden is the exact serialization of the fixed synthetic trace
// in TestChromeTraceGolden. The format is load-bearing: Perfetto and
// chrome://tracing parse exactly this shape (object format, metadata
// thread names, complete "X" events with microsecond timestamps).
const chromeGolden = `{"traceEvents":[
{"ph":"M","pid":1,"name":"process_name","args":{"name":"vizpower"}},
{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"pipeline"}},
{"ph":"M","pid":1,"tid":0,"name":"thread_sort_index","args":{"sort_index":0}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"worker 0"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_sort_index","args":{"sort_index":1}},
{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"worker 1"}},
{"ph":"M","pid":1,"tid":2,"name":"thread_sort_index","args":{"sort_index":2}},
{"ph":"X","pid":1,"tid":0,"name":"simulate","ts":0,"dur":2.5},
{"ph":"X","pid":1,"tid":0,"name":"Contour","ts":2.5,"dur":1500.1},
{"ph":"X","pid":1,"tid":1,"name":"par.chunks","ts":3,"dur":1},
{"ph":"X","pid":1,"tid":2,"name":"par.chunks","ts":3.5,"dur":0.999}
]}
`

func syntheticTracer() *Tracer {
	tr := NewWithCapacity(2, 8)
	tr.Record(PipelineTrack, "simulate", 0, 2500)
	tr.Record(PipelineTrack, "Contour", 2500, 1500100)
	tr.Record(WorkerTrack(0), "par.chunks", 3000, 1000)
	tr.Record(WorkerTrack(1), "par.chunks", 3500, 999)
	return tr
}

// TestChromeTraceGolden holds the exporter bit-for-bit to the golden
// serialization of a fixed synthetic trace.
func TestChromeTraceGolden(t *testing.T) {
	var b strings.Builder
	if err := syntheticTracer().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != chromeGolden {
		t.Errorf("trace JSON drifted from golden.\ngot:\n%s\nwant:\n%s", b.String(), chromeGolden)
	}
}

// TestChromeTraceParses proves the golden output is real JSON with the
// trace-event structure a viewer needs, via the same validator the
// profile subcommand runs on its written trace.json.
func TestChromeTraceParses(t *testing.T) {
	var b strings.Builder
	if err := syntheticTracer().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Errorf("validated %d events, want 11", n)
	}
	// Check timestamps decode to the original nanosecond values.
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "Contour" {
			if ev.TS != 2.5 || ev.Dur != 1500.1 || ev.TID != 0 {
				t.Errorf("Contour event = %+v, want ts 2.5 dur 1500.1 tid 0", ev)
			}
		}
	}
}

// TestValidateChromeTraceRejects exercises the validator's failure
// modes so the Makefile profile target can trust a zero exit.
func TestValidateChromeTraceRejects(t *testing.T) {
	for name, data := range map[string]string{
		"not json":    `{"traceEvents":[`,
		"empty":       `{"traceEvents":[]}`,
		"bad phase":   `{"traceEvents":[{"ph":"Q","name":"x"}]}`,
		"negative ts": `{"traceEvents":[{"ph":"X","name":"x","ts":-1,"dur":1}]}`,
	} {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

// TestUsec pins the microsecond renderer's edge cases.
func TestUsec(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{0, "0"}, {999, "0.999"}, {1000, "1"}, {1500, "1.5"},
		{2500, "2.5"}, {1500100, "1500.1"}, {-2500, "-2.5"},
	} {
		if got := usec(tc.ns); got != tc.want {
			t.Errorf("usec(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
