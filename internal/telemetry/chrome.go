package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteChromeTrace serializes the tracer's spans as Chrome trace-event
// JSON (the "JSON object format" with a traceEvents array), loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. Every track becomes
// one named thread under a single "vizpower" process: metadata events
// name the process and threads, and each span is one complete ("X")
// event with microsecond timestamps carrying nanosecond fractions.
//
// The output is deterministic for a given span set: tracks ascending,
// spans in the canonical Spans() order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, t.Spans(), t.trackNames())
}

// WriteChromeSpans is WriteChromeTrace over an explicit span set (a
// filtered window, or a synthetic trace in tests). names maps track
// index to display name; missing entries fall back to "track N".
func WriteChromeSpans(w io.Writer, spans []Span, names map[int]string) error {
	return writeChromeTrace(w, spans, names)
}

func (t *Tracer) trackNames() map[int]string {
	if t == nil {
		return nil
	}
	names := make(map[int]string, len(t.tracks))
	for i, tr := range t.tracks {
		names[i] = tr.name
	}
	return names
}

func writeChromeTrace(w io.Writer, spans []Span, names map[int]string) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	const pid = 1
	emit(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"vizpower"}}`)
	// Thread metadata: one per track that appears (plus any named track),
	// with sort_index pinning the pipeline track above the workers.
	seen := map[int]bool{}
	for _, s := range spans {
		seen[int(s.Track)] = true
	}
	for tr := range names {
		seen[tr] = true
	}
	tracks := make([]int, 0, len(seen))
	for tr := range seen {
		tracks = append(tracks, tr)
	}
	sortInts(tracks)
	for _, tr := range tracks {
		name := names[tr]
		if name == "" {
			name = fmt.Sprintf("track %d", tr)
		}
		nb, err := json.Marshal(name)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`, pid, tr, nb))
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, pid, tr, tr))
	}
	for _, s := range spans {
		nb, err := json.Marshal(s.Name)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"ts":%s,"dur":%s}`,
			pid, s.Track, nb, usec(s.Start), usec(s.Dur)))
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec renders nanoseconds as decimal microseconds with up to three
// fractional digits (trace-event timestamps are microseconds; the
// fraction preserves full nanosecond precision).
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	whole, frac := ns/1000, ns%1000
	if frac == 0 {
		return neg + strconv.FormatInt(whole, 10)
	}
	s := fmt.Sprintf("%s%d.%03d", neg, whole, frac)
	for s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	return s
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// ValidateChromeTrace parses data as trace-event JSON and returns the
// number of events, or an error describing why the file is not a valid
// trace. The Makefile profile target and the profile subcommand use it
// to prove the written trace.json round-trips.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("telemetry: invalid trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("telemetry: trace has no events")
	}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 || ev.TS < 0 {
				return 0, fmt.Errorf("telemetry: event %d has negative ts/dur", i)
			}
		case "M":
		default:
			return 0, fmt.Errorf("telemetry: event %d has unexpected phase %q", i, ev.Ph)
		}
	}
	return len(doc.TraceEvents), nil
}
