package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsDisabled: every method on a nil tracer must be a safe
// no-op — that is the disabled fast path instrumented code relies on.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if got := tr.Now(); got != 0 {
		t.Errorf("nil Now() = %d, want 0", got)
	}
	s := tr.Begin()
	tr.End(PipelineTrack, "x", s)
	tr.Record(0, "x", 0, 1)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Tracks() != 0 {
		t.Error("nil tracer recorded something")
	}
	if spans := tr.Spans(); spans != nil {
		t.Errorf("nil Spans() = %v, want nil", spans)
	}
	tr.Reset()
	tr.SetTrackName(0, "x")
}

// TestSpanNestingInvariants records a begin/end pair nest and checks
// the canonical ordering: on one track, sorted output puts the parent
// (earlier start, longer duration) before its children, children are
// contained in their parent, and siblings do not overlap.
func TestSpanNestingInvariants(t *testing.T) {
	tr := New(2)
	outer := tr.Begin()
	for i := 0; i < 3; i++ {
		inner := tr.Begin()
		time.Sleep(time.Millisecond)
		tr.End(PipelineTrack, "child", inner)
	}
	tr.End(PipelineTrack, "parent", outer)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Name != "parent" {
		t.Fatalf("first span %q, want parent (parent-before-child order)", spans[0].Name)
	}
	p := spans[0]
	var prevEnd int64
	for _, c := range spans[1:] {
		if c.Name != "child" {
			t.Fatalf("unexpected span %q", c.Name)
		}
		if c.Start < p.Start || c.End() > p.End() {
			t.Errorf("child [%d,%d) not contained in parent [%d,%d)", c.Start, c.End(), p.Start, p.End())
		}
		if c.Start < prevEnd {
			t.Errorf("sibling children overlap: start %d < previous end %d", c.Start, prevEnd)
		}
		prevEnd = c.End()
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped %d spans", tr.Dropped())
	}
}

// TestConcurrentRecording hammers one tracer from many goroutines —
// both a private track per goroutine (the pool-worker pattern) and a
// single shared track — and checks nothing is lost or torn. Run under
// -race by the Makefile race target.
func TestConcurrentRecording(t *testing.T) {
	const workers = 8
	const perWorker = 500
	tr := NewWithCapacity(workers, workers*perWorker+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := tr.Begin()
				tr.End(WorkerTrack(w), "own", s)
				tr.Record(PipelineTrack, "shared", int64(i), 1)
			}
		}(w)
	}
	wg.Wait()
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d spans", tr.Dropped())
	}
	spans := tr.Spans()
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Name]++
		if s.Name == "" {
			t.Fatal("torn span with empty name")
		}
	}
	if counts["own"] != workers*perWorker || counts["shared"] != workers*perWorker {
		t.Errorf("counts = %v, want %d each", counts, workers*perWorker)
	}
}

// TestDroppedAccounting fills a tiny track and checks overflow is
// counted, not blocking or corrupting.
func TestDroppedAccounting(t *testing.T) {
	tr := NewWithCapacity(0, 4)
	for i := 0; i < 10; i++ {
		tr.Record(PipelineTrack, "s", int64(i), 1)
	}
	if got := tr.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("Reset did not clear the track")
	}
	tr.Record(PipelineTrack, "t", 0, 1)
	if tr.Len() != 1 {
		t.Error("track unusable after Reset")
	}
}

// TestRecordBounds: spans on unknown tracks and negative durations must
// not corrupt the buffers.
func TestRecordBounds(t *testing.T) {
	tr := New(1)
	tr.Record(-1, "x", 0, 1)
	tr.Record(99, "x", 0, 1)
	tr.Record(PipelineTrack, "neg", 10, -5)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Dur != 0 {
		t.Errorf("spans = %v, want one zero-dur span", spans)
	}
}

// TestSummarizeSelfTime checks the containment sweep: a parent's self
// time excludes its children, across tracks independently.
func TestSummarizeSelfTime(t *testing.T) {
	spans := []Span{
		{Name: "parent", Track: 0, Start: 0, Dur: 100},
		{Name: "child", Track: 0, Start: 10, Dur: 30},
		{Name: "child", Track: 0, Start: 50, Dur: 20},
		{Name: "grandchild", Track: 0, Start: 12, Dur: 5},
		// Same shape on another track must not bleed into track 0.
		{Name: "parent", Track: 1, Start: 0, Dur: 40},
	}
	stats := Summarize(spans)
	got := map[string]StageStat{}
	for _, st := range stats {
		got[st.Name] = st
	}
	if st := got["parent"]; st.SelfNs != (100-30-20)+40 || st.TotalNs != 140 || st.Count != 2 {
		t.Errorf("parent = %+v, want self 90 total 140 count 2", st)
	}
	if st := got["child"]; st.SelfNs != (30-5)+20 || st.TotalNs != 50 || st.MaxNs != 30 {
		t.Errorf("child = %+v, want self 45 total 50 max 30", st)
	}
	if st := got["grandchild"]; st.SelfNs != 5 {
		t.Errorf("grandchild = %+v, want self 5", st)
	}
	// Ranked by self time descending.
	if stats[0].Name != "parent" {
		t.Errorf("first stage %q, want parent", stats[0].Name)
	}
}

// TestWindow slices spans by start offset for per-cell attribution.
func TestWindow(t *testing.T) {
	spans := []Span{
		{Name: "a", Start: 5, Dur: 1},
		{Name: "b", Start: 10, Dur: 1},
		{Name: "c", Start: 20, Dur: 1},
	}
	got := Window(spans, 10, 20)
	if len(got) != 1 || got[0].Name != "b" {
		t.Errorf("Window = %v, want [b]", got)
	}
}

// TestWriteSummaryRenders smoke-tests the text renderer: every stage
// name appears and the wall-percent column shows up when wall is given.
func TestWriteSummaryRenders(t *testing.T) {
	spans := []Span{
		{Name: "simulate", Track: 0, Start: 0, Dur: 3_000_000},
		{Name: "Contour", Track: 0, Start: 3_000_000, Dur: 1_500_000},
	}
	var b strings.Builder
	if err := WriteSummary(&b, spans, 2, 4_500_000); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"simulate", "Contour", "% wall", "top 2 spans", "66.7%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
