// Package telemetry is the execution-tracing and metrics layer of the
// reproduction: hierarchical wall-clock spans recorded around every
// pipeline stage (simulation step, each visualization filter, render,
// composite, rank operations) and around parallel-loop launches, plus
// exporters that turn the recorded spans into a Chrome trace-event JSON
// file (loadable in Perfetto or chrome://tracing) and a plain-text
// self-time summary.
//
// The design goals mirror the instrumentation built into production in
// situ stacks (Ascent/Catalyst-style timing trees): the paper's entire
// methodology is measurement, so the reproduction must be able to say
// where wall-clock time goes inside a sweep cell — not just report
// end-of-run operation aggregates.
//
// Two properties are load-bearing:
//
//   - The disabled path is (nearly) free. A nil *Tracer is a valid,
//     permanently-disabled tracer: Now returns 0 and End returns
//     immediately, so instrumented code carries only a nil check and no
//     allocation. Hot loops (par.Pool dispatch) must bench identically
//     with telemetry off.
//
//   - Recording is lock-free and allocation-free. Each track owns a
//     preallocated span buffer; a slot is claimed with one atomic add, so
//     concurrent writers — pool workers, fabric ranks — never contend on
//     a lock or allocate on the hot path. When a buffer fills, further
//     spans on that track are counted as dropped rather than blocking.
//
// Span nesting is implicit: spans on the same track that contain one
// another in time render (and summarize) as parent/child, exactly as the
// Chrome trace viewer treats overlapping complete events on one thread
// track. Track 0 is by convention the pipeline track (the goroutine
// driving the in situ loop); tracks 1..N are pool workers or fabric
// ranks.
package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Span is one recorded interval: a name, the track it belongs to, and
// its start offset and duration in nanoseconds since the tracer's epoch.
// Parent/child structure is implied by containment on a track.
type Span struct {
	Name  string
	Track int32
	Start int64 // ns since the tracer epoch
	Dur   int64 // ns
}

// End returns the span's end offset in nanoseconds since the epoch.
func (s Span) End() int64 { return s.Start + s.Dur }

// PipelineTrack is the track index of the goroutine driving the in situ
// pipeline; stage spans (simulate, export, each filter) land here.
const PipelineTrack = 0

// WorkerTrack maps a pool worker (or fabric rank) index to its track.
func WorkerTrack(w int) int { return w + 1 }

// DefaultTrackCapacity is the per-track span buffer size used by New.
// At one launch span per pool dispatch and a handful of stage spans per
// cycle, 1<<15 spans absorb thousands of in situ cycles before dropping.
const DefaultTrackCapacity = 1 << 15

// track is one lock-free span buffer. Writers reserve a slot with an
// atomic add; a reservation past capacity is counted as dropped. The
// published counter trails the cursor so readers never observe a
// half-written slot.
type track struct {
	buf       []Span
	cur       atomic.Int64 // reservation cursor (may exceed len(buf))
	published atomic.Int64 // slots fully written and safe to read
	name      string
}

// Tracer records spans on a fixed set of tracks. A nil Tracer is valid
// and permanently disabled. Tracers are safe for concurrent use; each
// individual track accepts concurrent writers.
type Tracer struct {
	epoch  time.Time
	tracks []*track
}

// New returns a tracer with one pipeline track plus one track per
// worker, each with DefaultTrackCapacity span slots.
func New(workers int) *Tracer {
	return NewWithCapacity(workers, DefaultTrackCapacity)
}

// NewWithCapacity is New with an explicit per-track buffer capacity.
func NewWithCapacity(workers, capacity int) *Tracer {
	if workers < 0 {
		workers = 0
	}
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{epoch: time.Now(), tracks: make([]*track, workers+1)}
	t.tracks[0] = &track{buf: make([]Span, capacity), name: "pipeline"}
	for w := 0; w < workers; w++ {
		t.tracks[w+1] = &track{buf: make([]Span, capacity), name: fmt.Sprintf("worker %d", w)}
	}
	return t
}

// LaneTrack maps a serving-daemon request lane to its track index, in a
// tracer built by NewServing(workers, lanes): lanes sit after the
// pipeline track and the workers' tracks, so pool chunk spans and
// per-request spans coexist in one trace.
func LaneTrack(workers, lane int) int { return workers + 1 + lane }

// NewServing returns a tracer laid out for the serving daemon: the
// pipeline track, one track per pool worker, and `lanes` request lanes
// (named "request lane N") on which per-request spans
// (admit/wait/build/render/encode) are recorded. Each in-flight request
// leases one lane, so containment-on-a-track keeps a request's spans
// nested under its own request span.
func NewServing(workers, lanes int) *Tracer {
	if lanes < 0 {
		lanes = 0
	}
	t := New(workers + lanes)
	for l := 0; l < lanes; l++ {
		t.SetTrackName(LaneTrack(workers, l), fmt.Sprintf("request lane %d", l))
	}
	return t
}

// Tracks returns the number of tracks (pipeline + workers).
func (t *Tracer) Tracks() int {
	if t == nil {
		return 0
	}
	return len(t.tracks)
}

// SetTrackName renames a track for the exporters (e.g. "rank 3").
func (t *Tracer) SetTrackName(track int, name string) {
	if t == nil || track < 0 || track >= len(t.tracks) {
		return
	}
	t.tracks[track].name = name
}

// TrackName returns the display name of a track.
func (t *Tracer) TrackName(track int) string {
	if t == nil || track < 0 || track >= len(t.tracks) {
		return ""
	}
	return t.tracks[track].name
}

// Now returns the current offset in nanoseconds since the tracer epoch,
// read from the monotonic clock. On a nil tracer it returns 0, so
// instrumented code can call Begin/End unconditionally.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Begin marks the start of a span: it is Now under a name that reads as
// a pair with End at the call site.
func (t *Tracer) Begin() int64 { return t.Now() }

// End records a span on track that started at the offset a matching
// Begin returned. It is the single hot-path recording call: one clock
// read, one atomic add, one slot write; no allocation. On a nil tracer
// it is a no-op.
func (t *Tracer) End(track int, name string, start int64) {
	if t == nil {
		return
	}
	now := int64(time.Since(t.epoch))
	t.Record(track, name, start, now-start)
}

// Record inserts a span with an explicit start and duration. Exporters
// and tests use it to build synthetic traces; instrumented code should
// prefer Begin/End. Spans on unknown tracks are dropped silently; a
// negative duration is clamped to zero.
func (t *Tracer) Record(track int, name string, start, dur int64) {
	if t == nil || track < 0 || track >= len(t.tracks) {
		return
	}
	if dur < 0 {
		dur = 0
	}
	tr := t.tracks[track]
	slot := tr.cur.Add(1) - 1
	if slot >= int64(len(tr.buf)) {
		return // buffer full: dropped, accounted by Dropped()
	}
	tr.buf[slot] = Span{Name: name, Track: int32(track), Start: start, Dur: dur}
	// Publish in order: a reader sees slot i only after every slot <= i
	// is fully written. Writers that finish out of order spin briefly;
	// the window is a single struct assignment.
	for !tr.published.CompareAndSwap(slot, slot+1) {
	}
}

// Dropped returns the number of spans discarded because a track buffer
// was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for _, tr := range t.tracks {
		if over := tr.cur.Load() - int64(len(tr.buf)); over > 0 {
			n += over
		}
	}
	return n
}

// Len returns the number of spans currently recorded across all tracks.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	var n int64
	for _, tr := range t.tracks {
		n += tr.published.Load()
	}
	return int(n)
}

// Spans returns a snapshot of every recorded span, sorted by (track,
// start, longer-first): on each track a parent always precedes its
// children, which is the order the summarizer's containment sweep and
// the exporters rely on. The snapshot is a copy; recording may continue
// concurrently.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, tr := range t.tracks {
		n := tr.published.Load()
		out = append(out, tr.buf[:n]...)
	}
	SortSpans(out)
	return out
}

// Reset discards all recorded spans (the epoch is preserved, so offsets
// from before and after a Reset remain comparable).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for _, tr := range t.tracks {
		tr.published.Store(0)
		tr.cur.Store(0)
	}
}

// SortSpans orders spans by (track, start, longer-first, name) — the
// canonical parent-before-child order used throughout the package.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		return a.Name < b.Name
	})
}
