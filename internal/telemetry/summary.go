package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// StageStat aggregates every span sharing one name: how many there
// were, their total (inclusive) time, and their self time — total minus
// the time covered by child spans nested inside them on the same track.
// Self time is what the summary table ranks by: it attributes each
// nanosecond of the trace to exactly one stage.
type StageStat struct {
	Name    string
	Count   int64
	TotalNs int64
	SelfNs  int64
	MaxNs   int64 // longest single span
}

// TotalSec returns the inclusive time in seconds.
func (s StageStat) TotalSec() float64 { return float64(s.TotalNs) / 1e9 }

// SelfSec returns the self time in seconds.
func (s StageStat) SelfSec() float64 { return float64(s.SelfNs) / 1e9 }

// Summarize aggregates spans into per-name statistics, self time
// computed by a containment sweep per track: spans are walked in the
// canonical order (start ascending, parents before children) with a
// stack of open spans; each span's duration is subtracted from its
// nearest enclosing span's self time. The result is sorted by self time
// descending.
func Summarize(spans []Span) []StageStat {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)

	self := make([]int64, len(sorted))
	type open struct{ idx int }
	var stack []open
	prevTrack := int32(-1)
	for i, s := range sorted {
		if s.Track != prevTrack {
			stack = stack[:0]
			prevTrack = s.Track
		}
		// Pop spans that ended before this one starts.
		for len(stack) > 0 && sorted[stack[len(stack)-1].idx].End() <= s.Start {
			stack = stack[:len(stack)-1]
		}
		self[i] = s.Dur
		if len(stack) > 0 {
			self[stack[len(stack)-1].idx] -= s.Dur
		}
		stack = append(stack, open{idx: i})
	}

	byName := make(map[string]*StageStat)
	var order []string
	for i, s := range sorted {
		st := byName[s.Name]
		if st == nil {
			st = &StageStat{Name: s.Name}
			byName[s.Name] = st
			order = append(order, s.Name)
		}
		st.Count++
		st.TotalNs += s.Dur
		st.SelfNs += self[i]
		if s.Dur > st.MaxNs {
			st.MaxNs = s.Dur
		}
	}
	out := make([]StageStat, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SelfNs != out[j].SelfNs {
			return out[i].SelfNs > out[j].SelfNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Window returns the spans that start inside [lo, hi) — the per-cell
// attribution slice the harness records for each sweep cell.
func Window(spans []Span, lo, hi int64) []Span {
	var out []Span
	for _, s := range spans {
		if s.Start >= lo && s.Start < hi {
			out = append(out, s)
		}
	}
	return out
}

// WriteSummary renders the plain-text profile: the per-stage self-time
// table and the topN longest individual spans. wallNs, when positive,
// adds a percent-of-wall column.
func WriteSummary(w io.Writer, spans []Span, topN int, wallNs int64) error {
	stats := Summarize(spans)
	var b strings.Builder
	b.WriteString("stage summary (self time attributes each ns to exactly one stage)\n")
	fmt.Fprintf(&b, "%-28s %8s %12s %12s %12s", "stage", "count", "self", "total", "max")
	if wallNs > 0 {
		fmt.Fprintf(&b, " %7s", "% wall")
	}
	b.WriteByte('\n')
	for _, st := range stats {
		fmt.Fprintf(&b, "%-28s %8d %12s %12s %12s",
			st.Name, st.Count, fmtDur(st.SelfNs), fmtDur(st.TotalNs), fmtDur(st.MaxNs))
		if wallNs > 0 {
			fmt.Fprintf(&b, " %6.1f%%", 100*float64(st.SelfNs)/float64(wallNs))
		}
		b.WriteByte('\n')
	}
	if topN > 0 {
		longest := make([]Span, len(spans))
		copy(longest, spans)
		sort.SliceStable(longest, func(i, j int) bool {
			if longest[i].Dur != longest[j].Dur {
				return longest[i].Dur > longest[j].Dur
			}
			if longest[i].Track != longest[j].Track {
				return longest[i].Track < longest[j].Track
			}
			return longest[i].Start < longest[j].Start
		})
		if topN > len(longest) {
			topN = len(longest)
		}
		fmt.Fprintf(&b, "\ntop %d spans\n", topN)
		fmt.Fprintf(&b, "%-28s %6s %12s %14s\n", "span", "track", "dur", "start")
		for _, s := range longest[:topN] {
			fmt.Fprintf(&b, "%-28s %6d %12s %14s\n", s.Name, s.Track, fmtDur(s.Dur), fmtDur(s.Start))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtDur renders nanoseconds in a fixed human unit per magnitude, with
// deterministic formatting (no time.Duration stringer variance).
func fmtDur(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
