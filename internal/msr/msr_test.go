package msr

import (
	"testing"
	"testing/quick"
)

func TestStoreLoad(t *testing.T) {
	f := NewFile()
	if _, ok := f.Load(IA32_APERF); ok {
		t.Error("unimplemented register reported ok")
	}
	f.Store(IA32_APERF, 42)
	v, ok := f.Load(IA32_APERF)
	if !ok || v != 42 {
		t.Errorf("Load = %d,%v want 42,true", v, ok)
	}
}

func TestAddWraps64(t *testing.T) {
	f := NewFile()
	f.Store(IA32_FIXED_CTR0, ^uint64(0)-1)
	if got := f.Add(IA32_FIXED_CTR0, 3); got != 1 {
		t.Errorf("Add wrap = %d, want 1", got)
	}
}

func TestAdd32Wraps(t *testing.T) {
	f := NewFile()
	f.Store(MSR_PKG_ENERGY_STATUS, 0xFFFFFFF0)
	if got := f.Add32(MSR_PKG_ENERGY_STATUS, 0x20); got != 0x10 {
		t.Errorf("Add32 wrap = %#x, want 0x10", got)
	}
	v, _ := f.Load(MSR_PKG_ENERGY_STATUS)
	if v != 0x10 {
		t.Errorf("stored value = %#x, want 0x10", v)
	}
}

func TestSafeFileReadGate(t *testing.T) {
	f := NewFile()
	f.Store(IA32_APERF, 7)
	f.Store(0x123, 9)
	s := Open(f, StudyAllowlist())
	if v, err := s.Read(IA32_APERF); err != nil || v != 7 {
		t.Errorf("allowed read = %d, %v", v, err)
	}
	if _, err := s.Read(0x123); err == nil {
		t.Error("read of non-allowlisted register succeeded")
	}
}

func TestSafeFileWriteGate(t *testing.T) {
	f := NewFile()
	s := Open(f, StudyAllowlist())
	if err := s.Write(IA32_APERF, 1); err == nil {
		t.Error("write to read-only register succeeded")
	}
	if err := s.Write(0x123, 1); err == nil {
		t.Error("write to non-allowlisted register succeeded")
	}
	if err := s.Write(IA32_PERFEVTSEL0, EvtLLCMiss); err != nil {
		t.Errorf("allowed write failed: %v", err)
	}
	v, _ := f.Load(IA32_PERFEVTSEL0)
	if v != EvtLLCMiss {
		t.Errorf("PERFEVTSEL0 = %#x, want %#x", v, uint64(EvtLLCMiss))
	}
}

func TestWriteMaskPreservesHighBits(t *testing.T) {
	f := NewFile()
	// Hardware-owned high bits of the power limit (lock bit etc.).
	f.Store(MSR_PKG_POWER_LIMIT, 0xAB00000000000000)
	s := Open(f, StudyAllowlist())
	if err := s.Write(MSR_PKG_POWER_LIMIT, 0xFFFFFFFFFFFFFFFF); err != nil {
		t.Fatalf("write failed: %v", err)
	}
	v, _ := f.Load(MSR_PKG_POWER_LIMIT)
	if v>>56 != 0xAB {
		t.Errorf("masked write clobbered high bits: %#x", v)
	}
	if v&0x00FFFFFF != 0x00FFFFFF {
		t.Errorf("masked write did not set writable bits: %#x", v)
	}
}

func TestConcurrentAccess(t *testing.T) {
	f := NewFile()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				f.Add(IA32_FIXED_CTR0, 1)
				f.Load(IA32_FIXED_CTR0)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	v, _ := f.Load(IA32_FIXED_CTR0)
	if v != 4000 {
		t.Errorf("concurrent Add total = %d, want 4000", v)
	}
}

// Property: Add32 always leaves the register within 32 bits and behaves
// like modular addition.
func TestAdd32Property(t *testing.T) {
	prop := func(start uint32, delta uint64) bool {
		f := NewFile()
		f.Store(MSR_PKG_ENERGY_STATUS, uint64(start))
		got := f.Add32(MSR_PKG_ENERGY_STATUS, delta)
		want := (uint64(start) + delta) & 0xFFFFFFFF
		return got == want && got <= 0xFFFFFFFF
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
