// Package msr emulates the model-specific-register interface the paper
// uses for all measurement and control: on LLNL systems the msr-safe
// driver exposes a curated set of 64-bit MSRs (RAPL power limits, energy
// status, APERF/MPERF, fixed and programmable performance counters) to
// unprivileged users. Here the registers are backed by an in-memory file
// that the simulated processor (internal/rapl, internal/perfctr) advances,
// while consumers go through a SafeFile gate that enforces an allowlist
// with per-register write masks — the same discipline msr-safe enforces.
package msr

import (
	"fmt"
	"sync"
)

// Architectural and model-specific register addresses used by the study
// (Intel SDM / Broadwell-EP).
const (
	// IA32_MPERF counts at the TSC base frequency while unhalted.
	IA32_MPERF = 0x0E7
	// IA32_APERF counts at the actual core frequency while unhalted.
	// APERF/MPERF is the paper's "effective CPU frequency" metric.
	IA32_APERF = 0x0E8

	// IA32_PMC0/1 are the programmable counters; the paper programs them
	// with last-level-cache references and misses.
	IA32_PMC0 = 0x0C1
	IA32_PMC1 = 0x0C2
	// IA32_PERFEVTSEL0/1 select the events for the programmable counters.
	IA32_PERFEVTSEL0 = 0x186
	IA32_PERFEVTSEL1 = 0x187

	// IA32_FIXED_CTR0 counts INST_RETIRED.ANY.
	IA32_FIXED_CTR0 = 0x309
	// IA32_FIXED_CTR1 counts CPU_CLK_UNHALTED.THREAD.
	IA32_FIXED_CTR1 = 0x30A
	// IA32_FIXED_CTR2 counts CPU_CLK_UNHALTED.REF_TSC.
	IA32_FIXED_CTR2 = 0x30B

	// MSR_RAPL_POWER_UNIT publishes the power/energy/time units.
	MSR_RAPL_POWER_UNIT = 0x606
	// MSR_PKG_POWER_LIMIT holds the enforced package power cap.
	MSR_PKG_POWER_LIMIT = 0x610
	// MSR_PKG_ENERGY_STATUS is the wrapping 32-bit energy accumulator.
	MSR_PKG_ENERGY_STATUS = 0x611
	// MSR_PKG_POWER_INFO publishes TDP and the min/max power range.
	MSR_PKG_POWER_INFO = 0x614
)

// Event encodings for IA32_PERFEVTSELx (event | umask<<8 | USR|OS|EN bits).
const (
	// EvtLLCReference is LONGEST_LAT_CACHE.REFERENCE (0x2E/0x4F).
	EvtLLCReference = 0x2E | 0x4F<<8 | 0x430000
	// EvtLLCMiss is LONGEST_LAT_CACHE.MISS (0x2E/0x41).
	EvtLLCMiss = 0x2E | 0x41<<8 | 0x430000
)

// File is a register file of 64-bit MSRs. The simulated hardware writes it
// with Store; software reads and writes it through a SafeFile. A File is
// safe for concurrent use.
type File struct {
	mu   sync.RWMutex
	regs map[uint32]uint64
}

// NewFile returns an empty register file.
func NewFile() *File {
	return &File{regs: make(map[uint32]uint64)}
}

// Store sets a register from the hardware side (no gate, registers spring
// into existence).
func (f *File) Store(addr uint32, val uint64) {
	f.mu.Lock()
	f.regs[addr] = val
	f.mu.Unlock()
}

// Load reads a register from the hardware side. Unimplemented registers
// read as zero with ok=false.
func (f *File) Load(addr uint32) (uint64, bool) {
	f.mu.RLock()
	v, ok := f.regs[addr]
	f.mu.RUnlock()
	return v, ok
}

// Add increments a register by delta (wrapping at 64 bits) and returns the
// new value.
func (f *File) Add(addr uint32, delta uint64) uint64 {
	f.mu.Lock()
	f.regs[addr] += delta
	v := f.regs[addr]
	f.mu.Unlock()
	return v
}

// Add32 increments a register that wraps at 32 bits (the RAPL energy
// status counter) and returns the new value.
func (f *File) Add32(addr uint32, delta uint64) uint64 {
	f.mu.Lock()
	v := (f.regs[addr] + delta) & 0xFFFFFFFF
	f.regs[addr] = v
	f.mu.Unlock()
	return v
}

// Permission describes what a SafeFile allows on one register, mirroring
// an msr-safe allowlist entry: readable or not, and a write mask (0 means
// read-only; bits outside the mask are preserved on write).
type Permission struct {
	Read      bool
	WriteMask uint64
}

// Allowlist maps register addresses to permissions.
type Allowlist map[uint32]Permission

// StudyAllowlist returns the allowlist the paper's measurements need:
// RAPL limit writable (its meaningful fields only), everything else
// read-only, counters and event selects accessible.
func StudyAllowlist() Allowlist {
	ro := Permission{Read: true}
	return Allowlist{
		IA32_MPERF:            ro,
		IA32_APERF:            ro,
		IA32_PMC0:             ro,
		IA32_PMC1:             ro,
		IA32_PERFEVTSEL0:      {Read: true, WriteMask: 0xFFFFFFFF},
		IA32_PERFEVTSEL1:      {Read: true, WriteMask: 0xFFFFFFFF},
		IA32_FIXED_CTR0:       ro,
		IA32_FIXED_CTR1:       ro,
		IA32_FIXED_CTR2:       ro,
		MSR_RAPL_POWER_UNIT:   ro,
		MSR_PKG_POWER_LIMIT:   {Read: true, WriteMask: 0x00FFFFFF},
		MSR_PKG_ENERGY_STATUS: ro,
		MSR_PKG_POWER_INFO:    ro,
	}
}

// SafeFile is the software-side handle: reads and writes are checked
// against the allowlist, like /dev/cpu/*/msr_safe.
type SafeFile struct {
	file  *File
	allow Allowlist
}

// Open returns a gated handle over file.
func Open(file *File, allow Allowlist) *SafeFile {
	return &SafeFile{file: file, allow: allow}
}

// Read returns the value of a register if the allowlist permits.
func (s *SafeFile) Read(addr uint32) (uint64, error) {
	p, ok := s.allow[addr]
	if !ok || !p.Read {
		return 0, fmt.Errorf("msr: read of 0x%X denied by allowlist", addr)
	}
	v, _ := s.file.Load(addr)
	return v, nil
}

// Write updates the writable bits of a register if the allowlist permits.
// Bits outside the write mask keep their current value, as msr-safe does.
func (s *SafeFile) Write(addr uint32, val uint64) error {
	p, ok := s.allow[addr]
	if !ok || p.WriteMask == 0 {
		return fmt.Errorf("msr: write of 0x%X denied by allowlist", addr)
	}
	cur, _ := s.file.Load(addr)
	s.file.Store(addr, (cur&^p.WriteMask)|(val&p.WriteMask))
	return nil
}
