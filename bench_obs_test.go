// Metrics-plane benchmarks (recorded in BENCH_PR10.json): the /metrics
// scrape against a live warm daemon, and the uninstrumented par.For
// dispatch check — the pool's hot path is read only at scrape time
// (func-backed collectors over PoolStats), so dispatch must match the
// BENCH_PR1/PR5 baseline bit for bit.
package repro_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/serve"
)

// BenchmarkObsServeScrape measures GET /metrics on a warm daemon: one
// full exposition over the request, admission, cache, pool, fabric,
// cinema, and governor series, validated once up front.
func BenchmarkObsServeScrape(b *testing.B) {
	cfg := benchServeConfig(b)
	s := serve.New(serve.Options{Config: cfg, BudgetWatts: 130, CinemaDir: b.TempDir()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, _ := benchGet(b, ts, "/render?alg=volren&frame=2"); resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d", resp.StatusCode)
	}
	if _, body := benchGet(b, ts, "/metrics"); true {
		if _, err := obs.ValidatePrometheus(body); err != nil {
			b.Fatalf("exposition invalid: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _ := benchGet(b, ts, "/metrics")
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkObsDispatchUninstrumented is the PR10 regression guard for
// the pool hot path: par.For on a warm pool with no registry anywhere
// in sight, the same shape as par's BenchmarkParForDispatch. The
// metrics plane reads pool counters only at scrape time, so this must
// stay within noise of the BENCH_PR1/PR5 numbers (0 allocs/op).
func BenchmarkObsDispatchUninstrumented(b *testing.B) {
	p := par.NewPool(4)
	defer p.Close()
	const n = 4 * 1024
	p.For(n, 1024, func(lo, hi, worker int) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(n, 1024, func(lo, hi, worker int) {})
	}
}
