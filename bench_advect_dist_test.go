// Benchmarks for the PR 6 distributed advection path: dist.Advect
// (parallelize-over-data on the rank fabric) against the single-rank
// reference and fast integrators on a migration-heavy field. Results
// are recorded in BENCH_PR6.json.
package repro_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/viz"
	"repro/internal/viz/advect"
)

// helixBenchGrid builds a rotating field with an oscillating z
// component, so particles cross slab boundaries in both directions and
// the distributed path pays real migration traffic (the swirl field of
// bench_advect_test.go barely moves in z). Cached across benchmarks.
var helixBenchGrids = map[int]*mesh.UniformGrid{}

func helixBenchGrid(b *testing.B, n int) *mesh.UniformGrid {
	b.Helper()
	if g, ok := helixBenchGrids[n]; ok {
		return g
	}
	g, err := mesh.NewCubeGrid(n)
	if err != nil {
		b.Fatal(err)
	}
	v := g.AddPointVector("velocity")
	for id := 0; id < g.NumPoints(); id++ {
		p := g.PointPosition(id)
		v[id] = mesh.Vec3{
			-(p[1] - 0.5),
			p[0] - 0.5,
			0.4 * math.Sin(8*math.Pi*p[0]),
		}
	}
	helixBenchGrids[n] = g
	return g
}

// BenchmarkAdvectDist advects 1024 particles for up to 1000 steps,
// fixed-step RK4 and adaptive BS23: the single-rank reference (ref) and
// fused-sampler (fast) integrators, then dist.Advect on 1/2/4/8 fabric
// ranks. Each rank advances its residents serially (this is a 1-CPU
// container), so the dist numbers measure what the decomposition,
// migration, and termination machinery cost on top of — and recover
// through rank concurrency against — the oracle. particle-steps/s
// counts emitted streamline vertices.
func BenchmarkAdvectDist(b *testing.B) {
	for _, n := range []int{32, 64} {
		g := helixBenchGrid(b, n)
		for _, cfg := range []struct {
			name     string
			ranks    int // 0: single-rank reference, -1: single-rank fast
			adaptive bool
		}{
			{"ref", 0, false},
			{"fast", -1, false},
			{"dist-1", 1, false},
			{"dist-2", 2, false},
			{"dist-4", 4, false},
			{"dist-8", 8, false},
			{"ref-adaptive", 0, true},
			{"fast-adaptive", -1, true},
			{"dist-1-adaptive", 1, true},
			{"dist-2-adaptive", 2, true},
			{"dist-4-adaptive", 4, true},
			{"dist-8-adaptive", 8, true},
		} {
			f := advect.New(advect.Options{
				NumParticles: 1024, NumSteps: 1000, StepLength: 0.001,
				Adaptive: cfg.adaptive,
			})
			b.Run(fmt.Sprintf("%s-%d", cfg.name, n), func(b *testing.B) {
				ex := viz.NewExec(par.Default())
				var steps uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var lines *mesh.LineSet
					switch cfg.ranks {
					case 0:
						res, err := f.RunReference(g, ex)
						if err != nil {
							b.Fatal(err)
						}
						lines = res.Lines
					case -1:
						res, err := f.Run(g, ex)
						if err != nil {
							b.Fatal(err)
						}
						lines = res.Lines
					default:
						res, err := dist.Advect(g, f, cfg.ranks, dist.AdvectOptions{
							Deadline: 2 * time.Minute,
						})
						if err != nil {
							b.Fatal(err)
						}
						lines = res.Lines
					}
					steps += uint64(lines.TotalPoints())
				}
				b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "particle-steps/s")
			})
		}
	}
}
