// Benchmarks for the PR 3 render hot path: the macrocell ray marcher
// against the retained reference sampler, the binned-SAH BVH build
// against the sort-median reference build, the traced frame, and the
// pipelined cinema sink against the synchronous one. Results are recorded
// in BENCH_PR3.json.
package repro_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cinema"
	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/render"
	"repro/internal/viz"
	"repro/internal/viz/raytrace"
	"repro/internal/viz/volren"
)

// blobBenchGrid builds a gaussian-blob volume (the volren test data set)
// at size n, cached across benchmarks.
var blobBenchGrids = map[int]*mesh.UniformGrid{}

func blobBenchGrid(b *testing.B, n int) *mesh.UniformGrid {
	b.Helper()
	if g, ok := blobBenchGrids[n]; ok {
		return g
	}
	g, err := mesh.NewCubeGrid(n)
	if err != nil {
		b.Fatal(err)
	}
	f := g.AddPointField("energy")
	c := mesh.Vec3{0.5, 0.5, 0.5}
	for id := 0; id < g.NumPoints(); id++ {
		d := g.PointPosition(id).Sub(c).Norm()
		f[id] = math.Exp(-10 * d * d)
	}
	blobBenchGrids[n] = g
	return g
}

func volrenTF(g *mesh.UniformGrid, transparent float64) render.TransferFunction {
	lo, hi := mesh.FieldRange(g.PointField("energy"))
	return render.TransferFunction{
		Norm:         render.Normalizer{Lo: lo, Hi: hi},
		OpacityScale: 0.25,
		Transparent:  transparent,
	}
}

// BenchmarkVolrenFrame renders one 128x128 orbit frame with the macrocell
// marcher (amortized acceleration state) and with the reference
// world-space sampler, at 32^3 and 64^3, with and without a transparency
// threshold. cells/s counts grid cells per rendered frame.
func BenchmarkVolrenFrame(b *testing.B) {
	for _, n := range []int{32, 64} {
		for _, cfg := range []struct {
			name        string
			transparent float64
			reference   bool
		}{
			{"ref", 0, true},
			{"fast", 0, false},
			{"fast-skip", 0.35, false},
		} {
			b.Run(fmt.Sprintf("%s-%d", cfg.name, n), func(b *testing.B) {
				g := blobBenchGrid(b, n)
				field := g.PointField("energy")
				tf := volrenTF(g, cfg.transparent)
				cam := render.OrbitCamera(g.Bounds(), 0.7, 0.35, 2.0)
				ex := viz.NewExec(par.Default())
				var r *volren.Renderer
				if !cfg.reference {
					r = volren.NewRenderer(g, field, tf, ex)
				}
				var im *render.Image
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if cfg.reference {
						im = volren.RenderImageReferenceInto(im, g, field, tf, cam, 128, 128, ex)
					} else {
						im = r.RenderImageInto(im, cam, 128, 128, ex)
					}
				}
				b.ReportMetric(float64(g.NumCells())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
			})
		}
	}
}

// BenchmarkRayTraceFrame traces one 128x128 orbit frame of the external
// surface at 32^3 and 64^3.
func BenchmarkRayTraceFrame(b *testing.B) {
	for _, n := range []int{32, 64} {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			g := benchGrid(b, n)
			ex := viz.NewExec(par.Default())
			scene, err := raytrace.GatherScene(g, "energy", ex)
			if err != nil {
				b.Fatal(err)
			}
			cam := render.OrbitCamera(g.Bounds(), 0.7, 0.35, 2.0)
			var im *render.Image
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				im = scene.RenderInto(im, cam, 128, 128, ex)
			}
			b.ReportMetric(float64(g.NumCells())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkBVHBuildPaths compares the parallel binned-SAH construction
// against the retained sort-median reference build over the external
// faces at 32^3 and 64^3.
func BenchmarkBVHBuildPaths(b *testing.B) {
	for _, n := range []int{32, 64} {
		g := benchGrid(b, n)
		tris, err := mesh.GridExternalFaces(g, "energy")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ref-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if raytrace.BuildBVHReference(tris) == nil {
					b.Fatal("nil BVH")
				}
			}
			b.ReportMetric(float64(tris.NumTris()), "tris")
		})
		b.Run(fmt.Sprintf("sah-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			pool := par.Default()
			for i := 0; i < b.N; i++ {
				if raytrace.BuildBVHWith(tris, pool) == nil {
					b.Fatal("nil BVH")
				}
			}
			b.ReportMetric(float64(tris.NumTris()), "tris")
		})
	}
}

// BenchmarkCinemaOrbitSink writes an 8-frame volume-rendered orbit
// database, with the synchronous writer and with the pipelined encode
// queue.
func BenchmarkCinemaOrbitSink(b *testing.B) {
	for _, mode := range []string{"sync", "async"} {
		b.Run(mode, func(b *testing.B) {
			g := blobBenchGrid(b, 32)
			for i := 0; i < b.N; i++ {
				db, err := cinema.New(b.TempDir(), "bench orbit", "Volume Rendering")
				if err != nil {
					b.Fatal(err)
				}
				if mode == "async" {
					db.StartAsync(0, 0)
				}
				f := volren.New(volren.Options{
					Field: "energy", Images: 8, Width: 128, Height: 128, Sink: db.Sink(),
				})
				if _, err := f.Run(g, viz.NewExec(par.Default())); err != nil {
					b.Fatal(err)
				}
				if err := db.Finalize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
