// Package repro is a from-scratch Go reproduction of "Power and
// Performance Tradeoffs for Visualization Algorithms" (Labasan, Larsen,
// Childs, Rountree — IPDPS 2019): eight shared-memory-parallel scientific
// visualization algorithms, a CloverLeaf-like hydrodynamics proxy that
// feeds them in situ, and a register-level simulation of the Intel
// Broadwell RAPL power-capping and performance-counter stack the paper
// measured with, plus the full experiment harness that regenerates every
// table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// hardware-substitution rationale, and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go regenerate
// each table and figure; the cmd/vizpower CLI drives the full campaign.
package repro
