// Command vizpower regenerates every table and figure of "Power and
// Performance Tradeoffs for Visualization Algorithms" (Labasan et al.,
// IPDPS 2019) on the simulated-Broadwell reproduction stack.
//
// Usage:
//
//	vizpower <command> [flags]
//
// Commands:
//
//	table1    Phase 1 — contour slowdown vs. power cap (Table I)
//	table2    Phase 2 — all algorithms at the phase size (Table II)
//	table3    Phase 3 — all algorithms at the largest size (Table III)
//	fig1      render the eight algorithm images (Figure 1) into -out
//	fig2a     effective frequency vs. cap, all algorithms (Figure 2a)
//	fig2b     IPC vs. cap (Figure 2b)
//	fig2c     LLC miss rate vs. cap (Figure 2c)
//	fig3      elements/s vs. cap, cell-centered algorithms (Figure 3)
//	fig4      IPC vs. cap by size — slice (Figure 4)
//	fig5      IPC vs. cap by size — volume rendering (Figure 5)
//	fig6      IPC vs. cap by size — particle advection (Figure 6)
//	advect    distributed parallelize-over-data particle advection:
//	          sweep -ranks fabric sizes, check bit-identity against the
//	          single-rank run, and report the migration breakdown
//	classify  demand power / IPC / miss rate / class per algorithm
//	trace     in situ power timeline under a cap (simulate+visualize)
//	profile   execution telemetry: run in situ cycles under a cap and
//	          write a Perfetto-loadable trace.json plus a stage summary
//	allocate  split a node power budget between simulation and viz
//	serve     run the rendering daemon: an HTTP/JSON API for frames,
//	          cinema orbit segments, and sweep cells, with a shared
//	          derived-structure cache and a power-budgeted admission
//	          queue (-addr, -budget; -budget 0 disables admission)
//	all       regenerate everything into -out (tables, CSVs, images)
//
// Common flags: -quick shrinks the study for a fast demonstration;
// -progress streams per-run log lines to stderr. Any command accepts
// -trace FILE (write a Chrome trace-event JSON of the run's pipeline
// and pool activity) and -cpuprofile FILE (write a pprof CPU profile).
// -backend trad|dpp selects the contour/threshold kernel formulation
// (traditional scratch-mesh vs data-parallel primitives); `all` runs
// both and reports the per-backend classification.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cinema"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dist"
	"repro/internal/harness"
	"repro/internal/mesh"
	"repro/internal/msr"
	"repro/internal/obs"
	"repro/internal/perfctr"
	"repro/internal/power"
	"repro/internal/rapl"
	"repro/internal/serve"
	"repro/internal/sim/clover"
	"repro/internal/telemetry"
	"repro/internal/viz"
	"repro/internal/viz/advect"
	"repro/internal/viz/raytrace"
	"repro/internal/viz/volren"
	"repro/internal/vtkio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vizpower:", err)
		os.Exit(1)
	}
}

type options struct {
	cfg        *harness.Config
	csv        bool
	out        string
	capW       float64
	budget     float64
	cycles     int
	figSize    int
	alg        string
	extended   bool
	adaptive   bool
	distRanks  int
	traceFile  string
	cpuprofile string
	addr       string
	queueDepth int
	govern     bool
	decisions  bool
}

func parseFlags(cmd string, args []string) (*options, error) {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "shrink the study for a fast demonstration (small sizes and image counts)")
		progress  = fs.Bool("progress", false, "stream per-run progress to stderr")
		sizes     = fs.String("sizes", "", "comma-separated data-set sizes (default 32,64,128,256; quick: 16,32)")
		phaseSize = fs.Int("phase-size", 0, "data-set size for phases 1-2 (default 128; quick: 32)")
		images    = fs.Int("images", 0, "ray tracing / volume rendering image count (default 50)")
		imgSize   = fs.Int("imgsize", 0, "rendered image width/height (default 128)")
		particles = fs.Int("particles", 0, "particle advection seed count (default 1024)")
		steps     = fs.Int("steps", 0, "particle advection step count (default 1000)")
		iso       = fs.Int("isovalues", 0, "contour isovalues per cycle (default 10)")
		csv       = fs.Bool("csv", false, "emit figures as CSV instead of aligned text")
		out       = fs.String("out", "out", "output directory (fig1, all)")
		capW      = fs.Float64("cap", 65, "power cap in watts (trace)")
		budget    = fs.Float64("budget", 130, "node power budget in watts (allocate, serve; serve: 0 disables admission control)")
		addr      = fs.String("addr", "localhost:8080", "listen address (serve)")
		queue     = fs.Int("queue", 64, "admission queue depth before 429s (serve)")
		cycles    = fs.Int("cycles", 3, "in situ cycles (trace)")
		figRes    = fs.Int("figres", 256, "figure-1 rendering resolution")
		alg       = fs.String("alg", "Contour", "algorithm name (arch)")
		extended  = fs.Bool("extended", false, "include the extension filters (classify)")
		ranks     = fs.String("ranks", "", "comma-separated fabric sizes for distributed advection (advect, profile; default 1,2,4,8)")
		adaptive  = fs.Bool("adaptive", false, "advect with the adaptive BS23 integrator instead of fixed-step RK4 (advect)")
		backend   = fs.String("backend", "trad", "geometry kernel formulation for contour/threshold: trad or dpp")
		traceF    = fs.String("trace", "", "write a Chrome trace-event JSON of this run to FILE (load in Perfetto)")
		cpuprof   = fs.String("cpuprofile", "", "write a pprof CPU profile of this run to FILE")
		governF   = fs.Bool("govern", false, "all: add the closed-loop governor sweep; serve: calibrate admission from a governed run")
		decisions = fs.Bool("decisions", false, "govern: dump each budget's cap-decision flight recording")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg := &harness.Config{}
	if *quick {
		cfg.Sizes = []int{16, 32}
		cfg.PhaseSize = 32
		cfg.Images = 10
		cfg.ImageSize = 64
		cfg.Particles = 256
		cfg.ParticleSteps = 300
		cfg.SimTime = 0.05
		cfg.MaxSimSize = 32
	}
	if *sizes != "" {
		cfg.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad -sizes entry %q: %w", s, err)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}
	if *phaseSize > 0 {
		cfg.PhaseSize = *phaseSize
	}
	if *images > 0 {
		cfg.Images = *images
	}
	if *imgSize > 0 {
		cfg.ImageSize = *imgSize
	}
	if *particles > 0 {
		cfg.Particles = *particles
	}
	if *steps > 0 {
		cfg.ParticleSteps = *steps
	}
	if *iso > 0 {
		cfg.Isovalues = *iso
	}
	b, err := viz.ParseBackend(*backend)
	if err != nil {
		return nil, err
	}
	cfg.Backend = b
	// distRanks marks an explicit -ranks request: profile then also runs
	// a distributed advection pass under the tracer at the largest size.
	distRanks := 0
	if *ranks != "" {
		cfg.Ranks = nil
		for _, s := range strings.Split(*ranks, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -ranks entry %q", s)
			}
			cfg.Ranks = append(cfg.Ranks, n)
			if n > distRanks {
				distRanks = n
			}
		}
	}
	if *progress {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  [progress]", line) }
	}
	// Sweep heartbeat: one line per executed (algorithm, size) cell so a
	// long campaign is observably alive. Tests construct Config directly
	// and stay quiet.
	cfg.Heartbeat = os.Stderr
	cfg.Defaults()
	return &options{
		cfg: cfg, csv: *csv, out: *out,
		capW: *capW, budget: *budget, cycles: *cycles, figSize: *figRes,
		alg: *alg, extended: *extended, adaptive: *adaptive, distRanks: distRanks,
		traceFile: *traceF, cpuprofile: *cpuprof,
		addr: *addr, queueDepth: *queue, govern: *governF, decisions: *decisions,
	}, nil
}

func run(args []string) (retErr error) {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	cmd := args[0]
	opt, err := parseFlags(cmd, args[1:])
	if err != nil {
		return err
	}
	c := opt.cfg

	if opt.cpuprofile != "" {
		f, err := os.Create(opt.cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	if opt.traceFile != "" {
		// One tracer across the whole invocation: harness cell spans on
		// the pipeline track, pool chunk spans on the worker tracks —
		// plus request-lane tracks when the daemon is what's traced.
		var tr *telemetry.Tracer
		if cmd == "serve" {
			tr = telemetry.NewServing(c.Pool.Workers(), 8)
		} else {
			tr = telemetry.New(c.Pool.Workers())
		}
		c.Pool.Instrument(tr)
		c.Tracer = tr
		defer func() {
			if err := writeTraceFile(opt.traceFile, tr); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}

	emitFig := func(title string, series []harness.Series) {
		if opt.csv {
			fmt.Print(harness.SeriesCSV("cap_watts", series))
		} else {
			fmt.Print(harness.FormatSeries(title, "cap (W)", series))
		}
	}

	switch cmd {
	case "table1":
		run1, err := c.Phase1()
		if err != nil {
			return err
		}
		fmt.Print(harness.Table1(run1, c.Caps))
	case "table2":
		runs, err := c.Phase2()
		if err != nil {
			return err
		}
		fmt.Print(harness.Table2(runs, c.Caps))
	case "table3":
		sizes := c.SortedSizes()
		runs, err := c.RunAll(sizes[len(sizes)-1])
		if err != nil {
			return err
		}
		fmt.Print(harness.Table3(runs, c.Caps))
	case "fig1":
		paths, err := c.RenderFig1(c.PhaseSize, opt.figSize, opt.out)
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Println("wrote", p)
		}
	case "fig2a", "fig2b", "fig2c", "fig3":
		runs, err := c.Phase2()
		if err != nil {
			return err
		}
		switch cmd {
		case "fig2a":
			emitFig("Figure 2a — effective frequency (GHz) vs. power cap", harness.Fig2a(runs, c.Caps))
		case "fig2b":
			emitFig("Figure 2b — IPC vs. power cap", harness.Fig2b(runs, c.Caps))
		case "fig2c":
			emitFig("Figure 2c — LLC miss rate vs. power cap", harness.Fig2c(runs, c.Caps))
		case "fig3":
			emitFig("Figure 3 — elements (M)/sec, cell-centered algorithms", harness.Fig3(runs, c.Caps))
		}
	case "fig4", "fig5", "fig6":
		name := map[string]string{
			"fig4": "Slice", "fig5": "Volume Rendering", "fig6": "Particle Advection",
		}[cmd]
		bySize, err := c.RunsBySize(name)
		if err != nil {
			return err
		}
		emitFig(fmt.Sprintf("Figure %s — %s IPC vs. power cap by data-set size", cmd[3:], name),
			harness.FigIPCBySize(bySize, c.SortedSizes(), c.Caps))
	case "classify", "demand":
		var runs []*harness.AlgoRun
		var err error
		if opt.extended {
			runs, err = c.RunAllExtended(c.PhaseSize)
		} else {
			runs, err = c.Phase2()
		}
		if err != nil {
			return err
		}
		fmt.Print(harness.DemandTable(runs))
	case "arch":
		rows, err := c.CompareArchitectures(opt.alg, harness.Architectures())
		if err != nil {
			return err
		}
		fmt.Print(harness.ArchTable(opt.alg, rows))
	case "export":
		return exportCmd(c, opt)
	case "cinema":
		return cinemaCmd(c, opt)
	case "energy":
		runs, err := c.Phase2()
		if err != nil {
			return err
		}
		fmt.Print(harness.EnergyTable(runs, c.Caps))
	case "verify":
		claims, err := c.CheckClaims()
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatClaims(claims))
		if !harness.ClaimsAllPass(claims) {
			return fmt.Errorf("reproduction claims failed")
		}
	case "overprovision":
		return overprovisionCmd(c, opt)
	case "feedback":
		return feedbackCmd(c, opt)
	case "govern":
		return governCmd(c, opt)
	case "advect":
		return advectCmd(c, opt)
	case "trace":
		return traceCmd(c, opt)
	case "profile":
		return profileCmd(c, opt)
	case "allocate":
		return allocateCmd(c, opt)
	case "serve":
		return serveCmd(c, opt)
	case "all":
		if err := allCmd(c, opt); err != nil {
			return err
		}
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
	reportFailures(c)
	return nil
}

// serveCmd runs the power-budgeted rendering daemon until interrupted,
// then drains in-flight requests and finalizes the open cinema databases.
func serveCmd(c *harness.Config, opt *options) error {
	srv := serve.New(serve.Options{
		Config:      c,
		BudgetWatts: opt.budget,
		QueueDepth:  opt.queueDepth,
		CinemaDir:   filepath.Join(opt.out, "serve-cinema"),
		Tracer:      c.Tracer,
	})
	if opt.govern {
		// Calibrate admission from a short governed run: per-class
		// measured demand replaces the spec-TDP first-request guess.
		// A small pipeline suffices — the class demand, not the per-size
		// cost, is what seeds the estimate ladder.
		size := c.PhaseSize
		if size > 32 {
			size = 32
		}
		res, err := c.GovernorCompare(size, nil, 2)
		if err != nil {
			return fmt.Errorf("govern calibration: %w", err)
		}
		srv.SeedClassDemand(res.ClassDemand)
		// The calibration runs' flight recordings seed /debug/governor,
		// so the daemon exposes why the admission ladder looks the way
		// it does. Budgets ran in sequence; their decisions concatenate
		// in time order.
		var dec []obs.Decision
		var dropped int64
		for _, row := range res.Rows {
			dec = append(dec, row.Decisions...)
			dropped += row.DecisionsDropped
		}
		srv.SetGovernorLog(dec, dropped)
		fmt.Fprintf(os.Stderr, "vizpower serve: admission calibrated from a governed %d^3 run:", size)
		for _, class := range []core.Class{core.PowerOpportunity, core.PowerSensitive} {
			if w, ok := res.ClassDemand[class]; ok {
				fmt.Fprintf(os.Stderr, " %s %.1f W", class, w)
			}
		}
		fmt.Fprintln(os.Stderr)
	}
	hs := &http.Server{Addr: opt.addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	if opt.budget > 0 {
		fmt.Fprintf(os.Stderr, "vizpower serve: listening on %s (budget %.0f W, queue %d)\n",
			opt.addr, opt.budget, opt.queueDepth)
	} else {
		fmt.Fprintf(os.Stderr, "vizpower serve: listening on %s (admission control off)\n", opt.addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		// Listener died on its own (bad address, port in use).
		srv.Close()
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "vizpower serve: %v — draining\n", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		// Stragglers past the drain window are cut off; the cinema
		// manifests below still cover every frame that completed.
		hs.Close()
	}
	return srv.Close()
}

// reportFailures prints the partial-sweep error report to stderr: failed
// cells are skipped, every other configuration's results still stand.
func reportFailures(c *harness.Config) {
	if fs := c.Failures(); len(fs) > 0 {
		fmt.Fprint(os.Stderr, "vizpower: sweep degraded — ", harness.FailureReport(fs))
	}
}

// cinemaCmd renders an orbit image database (the paper's 50-image-per-
// cycle product) for a rendering algorithm into -out.
func cinemaCmd(c *harness.Config, opt *options) error {
	g, err := c.Dataset(c.PhaseSize)
	if err != nil {
		return err
	}
	db, err := cinema.New(opt.out, "vizpower orbit database", opt.alg)
	if err != nil {
		return err
	}
	// Pipeline PNG encoding off the render loop; Finalize drains the queue.
	db.StartAsync(0, 0)
	var f viz.Filter
	switch opt.alg {
	case "Volume Rendering":
		f = volren.New(volren.Options{
			Field: "energy", Images: c.Images,
			Width: c.ImageSize, Height: c.ImageSize, Sink: db.Sink(),
		})
	case "Ray Tracing":
		f = raytrace.New(raytrace.Options{
			Field: "energy", Images: c.Images,
			Width: c.ImageSize, Height: c.ImageSize, Sink: db.Sink(),
		})
	default:
		return fmt.Errorf("cinema: -alg must be %q or %q", "Ray Tracing", "Volume Rendering")
	}
	if _, err := f.Run(g, viz.NewExec(c.Pool)); err != nil {
		return err
	}
	if err := db.Finalize(); err != nil {
		return err
	}
	fmt.Printf("wrote %d images + index.json to %s\n", db.Len(), opt.out)
	return nil
}

// overprovisionCmd reproduces the Section III-A machine-room argument: a
// slab-decomposed visualization job on an overprovisioned cluster, with
// manufacturing variation, under uniform versus balanced per-node caps.
func overprovisionCmd(c *harness.Config, opt *options) error {
	g, err := c.Dataset(c.PhaseSize)
	if err != nil {
		return err
	}
	f, err := c.FilterByName(opt.alg)
	if err != nil {
		return err
	}
	const nNodes = 8
	nodes, err := cluster.BuildNodes(g, f, nNodes, c.Spec, 0.08,
		func() *viz.Exec { return viz.NewExec(c.Pool) })
	if err != nil {
		return err
	}
	budget := opt.budget
	if budget < nNodes*c.Spec.MinCapWatts {
		budget = nNodes * 55
	}
	fmt.Printf("overprovisioned cluster: %d nodes, %s on z-slabs, +-8%% silicon variation,\n"+
		"machine-room budget %.0f W (%.0f W/node if uniform)\n\n", nNodes, f.Name(), budget, budget/nNodes)
	uni, err := cluster.UniformCaps(nodes, budget)
	if err != nil {
		return err
	}
	bal, err := cluster.BalancedCaps(nodes, budget)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "node", "uniform cap", "uniform T", "balanced cap", "balanced T")
	for i := range nodes {
		fmt.Printf("%-6d %11.0fW %11.4fs %11.0fW %11.4fs\n",
			i, uni.CapsWatts[i], uni.TimesSec[i], bal.CapsWatts[i], bal.TimesSec[i])
	}
	fmt.Printf("\nmakespan: uniform %.4fs, balanced %.4fs (%.2fx)\n",
		uni.MakespanSec, bal.MakespanSec, uni.MakespanSec/bal.MakespanSec)
	fmt.Printf("idle node-seconds: uniform %.4f, balanced %.4f\n", uni.IdleNodeSec, bal.IdleNodeSec)
	fmt.Printf("trapped capacity under uniform caps: %.1f W of %.0f W budget\n",
		cluster.TrappedCapacityWatts(nodes, uni, budget), budget)
	return nil
}

// feedbackCmd runs the closed-loop GEOPM-style controller over an in situ
// cycle sequence and reports how it tracked the average-power target.
func feedbackCmd(c *harness.Config, opt *options) error {
	sim, err := clover.New(c.PhaseSize/2, clover.Options{})
	if err != nil {
		return err
	}
	pipe, err := core.NewPipeline(sim, c.Filters()[:2], 10, c.Pool, c.Spec)
	if err != nil {
		return err
	}
	var segs []cpu.Execution
	for i := 0; i < opt.cycles; i++ {
		cr, err := pipe.RunCycle()
		if err != nil {
			return err
		}
		segs = append(segs, cr.SimExec, cr.VizExec)
	}
	pkg := rapl.NewPackage(msr.NewFile(), c.Spec)
	res, err := power.RunFeedback(pkg, segs, opt.capW, 0, 0.1)
	if err != nil {
		return err
	}
	if opt.csv {
		return perfctr.WriteCSV(os.Stdout, res.Samples)
	}
	static := 0.0
	for _, e := range segs {
		static += e.UnderCap(opt.capW).TimeSec
	}
	fmt.Printf("feedback capping: %d segments, target average %.0f W\n", len(segs), opt.capW)
	fmt.Printf("achieved average %.2f W in %.4fs (static %.0f W cap: %.4fs, %.2fx slower)\n",
		res.AvgPowerWatts, res.TimeSec, opt.capW, static, static/res.TimeSec)
	fmt.Printf("controller settled at a %.1f W limit\n", res.FinalCapWatts)
	return nil
}

// governBudgets is the default budget ladder of the closed-loop sweep:
// below, at, and above the 70 W sensitivity boundary.
var governBudgets = []float64{55, 65, 75}

// governCmd sweeps the phase-aware closed-loop governor against the
// static phase plan and the uniform cap on a live in situ pipeline at
// the phase size.
func governCmd(c *harness.Config, opt *options) error {
	// The closed loop needs a few feedback rounds to settle; below six
	// cycles the comparison mostly measures its discovery transient.
	cycles := opt.cycles
	if cycles < 6 {
		cycles = 6
	}
	res, err := c.GovernorCompare(c.PhaseSize, governBudgets, cycles)
	if err != nil {
		return err
	}
	fmt.Print(harness.GovernTable(res))
	if len(res.Attribution) > 0 {
		fmt.Printf("\nwhere the joules went (live governed runs):\n")
		obs.WriteJoulesTable(os.Stdout, res.Attribution)
	}
	if opt.decisions {
		for _, row := range res.Rows {
			fmt.Printf("\ncap decisions at the %.0f W budget:\n", row.BudgetWatts)
			obs.WriteDecisionTable(os.Stdout, row.Decisions, row.DecisionsDropped)
		}
	}
	return nil
}

// advectCmd sweeps the distributed parallelize-over-data particle
// advection over the configured fabric sizes at the phase size, checks
// every gathered streamline set against the single-rank run bit for
// bit, and prints the Wang et al. (arXiv 2410.09710) migration
// breakdown. The fixed-step sweep goes through the cached harness cells
// (the same ones report.md renders); -adaptive exercises the BS23
// integrator directly, since the study cells are fixed-step like the
// paper's.
func advectCmd(c *harness.Config, opt *options) error {
	size := c.PhaseSize
	mode := "fixed-step RK4"
	var runs []*harness.AdvectDistRun
	var err error
	if opt.adaptive {
		mode = "adaptive BS23"
		runs, err = advectAdaptiveRuns(c, size)
	} else {
		runs, err = c.AdvectScaling(size)
	}
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("advect: no rank count in %v fits the %d z-layers of %d^3", c.Ranks, size, size)
	}
	fmt.Printf("distributed particle advection (parallelize-over-data) at %d^3\n", size)
	fmt.Printf("%d particles x %d steps, %s; oracle = single-rank shared-memory run\n", c.Particles, c.ParticleSteps, mode)
	fmt.Printf("oracle: %d particle steps in %.3fs\n\n", runs[0].ParticleSteps, runs[0].OracleWallSec)
	fmt.Printf("%-6s %-7s %-6s %-9s %-9s %-13s %-9s %-9s %-9s %s\n",
		"ranks", "rounds", "ghost", "wall(s)", "vs1rank", "participation", "migrated", "pingpong", "idle(ms)", "identical")
	for _, r := range runs {
		ident := "yes"
		if !r.Identical {
			ident = "NO"
		}
		fmt.Printf("%-6d %-7d %-6d %-9.3f %-9s %-13.2f %-9d %-9d %-9.1f %s\n",
			r.Ranks, r.Rounds, r.Ghost, r.WallSec,
			fmt.Sprintf("%.2fx", r.OracleWallSec/r.WallSec),
			r.Participation, r.Migrated, r.PingPong, float64(r.IdleNs)/1e6, ident)
	}
	if last := runs[len(runs)-1]; last.Ranks > 1 {
		fmt.Printf("\nper-rank breakdown at ranks=%d:\n", last.Ranks)
		fmt.Printf("%-5s %-8s %-10s %-8s %-8s %-8s %-9s %s\n",
			"rank", "seeded", "steps", "retired", "out", "in", "pingpong", "idle(ms)")
		for _, s := range last.Stats {
			fmt.Printf("%-5d %-8d %-10d %-8d %-8d %-8d %-9d %.1f\n",
				s.Rank, s.Seeded, s.Steps, s.Retired, s.MigratedOut, s.MigratedIn, s.PingPong, float64(s.IdleNs)/1e6)
		}
	}
	for _, r := range runs {
		if !r.Identical {
			return fmt.Errorf("advect: ranks=%d streamlines differ from the single-rank run", r.Ranks)
		}
	}
	return nil
}

// advectAdaptiveRuns is the -adaptive variant of the rank sweep: it
// bypasses the harness cell cache (which holds the paper's fixed-step
// configuration) and compares dist.Advect in BS23 mode against the
// matching single-rank run.
func advectAdaptiveRuns(c *harness.Config, size int) ([]*harness.AdvectDistRun, error) {
	g, err := c.Dataset(size)
	if err != nil {
		return nil, err
	}
	f := advect.New(advect.Options{
		Vector:       "velocity",
		NumParticles: c.Particles,
		NumSteps:     c.ParticleSteps,
		Adaptive:     true,
	})
	t0 := time.Now()
	res, err := f.Run(g, viz.NewExec(c.Pool))
	if err != nil {
		return nil, err
	}
	oracleWall := time.Since(t0).Seconds()
	var out []*harness.AdvectDistRun
	for _, rk := range c.Ranks {
		if rk < 1 || rk > size {
			continue
		}
		t1 := time.Now()
		dres, err := dist.Advect(g, f, rk, dist.AdvectOptions{
			Fabric:   dist.Options{Tracer: c.Tracer},
			Deadline: 5 * time.Minute,
		})
		if err != nil {
			return nil, fmt.Errorf("advect: ranks=%d: %w", rk, err)
		}
		run := &harness.AdvectDistRun{
			Size: size, Ranks: rk,
			Rounds: dres.Rounds, Ghost: dres.Ghost,
			WallSec: time.Since(t1).Seconds(), OracleWallSec: oracleWall,
			ParticleSteps: dres.Lines.TotalPoints(),
			Identical:     linesMatch(res.Lines, dres.Lines),
			Stats:         dres.Stats,
		}
		var total, max uint64
		for _, s := range dres.Stats {
			total += s.Steps
			if s.Steps > max {
				max = s.Steps
			}
			run.Migrated += s.MigratedOut
			run.PingPong += s.PingPong
			run.IdleNs += s.IdleNs
		}
		if max > 0 {
			run.Participation = float64(total) / (float64(rk) * float64(max))
		}
		out = append(out, run)
	}
	return out, nil
}

// linesMatch reports bit-exact equality of two streamline sets.
func linesMatch(a, b *mesh.LineSet) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Points) != len(b.Points) || len(a.Scalars) != len(b.Scalars) || len(a.Offsets) != len(b.Offsets) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] || a.Scalars[i] != b.Scalars[i] {
			return false
		}
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	return true
}

// traceCmd runs the in situ pipeline under a cap and prints the sampled
// power timeline.
func traceCmd(c *harness.Config, opt *options) error {
	sim, err := clover.New(c.PhaseSize/2, clover.Options{})
	if err != nil {
		return err
	}
	pipe, err := core.NewPipeline(sim, c.Filters(), 10, c.Pool, c.Spec)
	if err != nil {
		return err
	}
	pkg := rapl.NewPackage(msr.NewFile(), c.Spec)
	if err := pkg.SetLimitWatts(opt.capW); err != nil {
		return err
	}
	samples, results, err := pipe.Trace(pkg, opt.cycles, 0.1)
	if err != nil {
		return err
	}
	if opt.csv {
		return perfctr.WriteCSV(os.Stdout, samples)
	}
	fmt.Printf("in situ trace: %d cycles under a %.0f W cap (%d segments, %d samples)\n",
		opt.cycles, opt.capW, len(results), len(samples))
	for i, r := range results {
		phase := "simulate "
		if i%2 == 1 {
			phase = "visualize"
		}
		fmt.Printf("  segment %2d %s  T=%8.3fs  f=%.2fGHz  P=%6.2fW  E=%8.1fJ\n",
			i, phase, r.TimeSec, r.FreqGHz, r.PowerWatts, r.EnergyJ)
	}
	fmt.Printf("%-10s %-10s %-10s %-10s %-10s\n", "t(s)", "P(W)", "f(GHz)", "IPC", "LLCmiss")
	for _, s := range samples {
		fmt.Printf("%-10.2f %-10.2f %-10.2f %-10.2f %-10.3f\n",
			s.TimeSec, s.PowerW, s.EffFreqGHz, s.IPC, s.LLCMissRate)
	}
	return nil
}

// profileCmd is the telemetry entry point: run -cycles in situ cycles
// under the -cap RAPL limit with the tracer attached to both the
// pipeline (stage spans) and the worker pool (launch and chunk spans),
// then write a Perfetto-loadable trace.json and a plain-text stage
// summary into -out.
func profileCmd(c *harness.Config, opt *options) error {
	sim, err := clover.New(c.PhaseSize/2, clover.Options{})
	if err != nil {
		return err
	}
	pipe, err := core.NewPipeline(sim, c.Filters(), 10, c.Pool, c.Spec)
	if err != nil {
		return err
	}
	tr := c.Tracer // reuse the -trace tracer if one is already attached
	if tr == nil {
		// With -ranks the distributed advection pass below puts its
		// advance/exchange spans on WorkerTrack(rank), so the tracer
		// needs tracks for whichever of (workers, ranks) is larger.
		tracks := c.Pool.Workers()
		if opt.distRanks > tracks {
			tracks = opt.distRanks
		}
		tr = telemetry.New(tracks)
		c.Pool.Instrument(tr)
	}
	pipe.Tracer = tr
	pkg := rapl.NewPackage(msr.NewFile(), c.Spec)
	if err := pkg.SetLimitWatts(opt.capW); err != nil {
		return err
	}
	t0 := time.Now()
	samples, results, err := pipe.Trace(pkg, opt.cycles, 0.1)
	if err != nil {
		return err
	}
	wall := time.Since(t0)

	// An explicit -ranks also profiles a distributed advection pass on
	// the rank fabric, so the trace carries per-rank advance/exchange
	// spans next to the pipeline stages.
	if r := opt.distRanks; r > 1 {
		g, err := c.Dataset(c.PhaseSize)
		if err != nil {
			return err
		}
		f := advect.New(advect.Options{
			Vector:       "velocity",
			NumParticles: c.Particles,
			NumSteps:     c.ParticleSteps,
		})
		t1 := time.Now()
		dres, err := dist.Advect(g, f, r, dist.AdvectOptions{
			Fabric:   dist.Options{Tracer: tr},
			Deadline: 5 * time.Minute,
		})
		if err != nil {
			return err
		}
		fmt.Printf("profiled distributed advection on %d ranks: %d rounds, ghost %d, %.3fs\n",
			r, dres.Rounds, dres.Ghost, time.Since(t1).Seconds())
	}

	if err := os.MkdirAll(opt.out, 0o755); err != nil {
		return err
	}
	tracePath := filepath.Join(opt.out, "trace.json")
	if err := writeTraceFile(tracePath, tr); err != nil {
		return err
	}
	spans := tr.Spans()
	// The energy attribution joins the trace's self-time partition with
	// the meter timeline of the capped pipeline run — the distributed
	// advection pass above (unmetered) shows up as extra self time, not
	// extra joules.
	joules := obs.Attribute(telemetry.Summarize(spans), samples)
	summaryPath := filepath.Join(opt.out, "summary.txt")
	sf, err := os.Create(summaryPath)
	if err != nil {
		return err
	}
	if err := telemetry.WriteSummary(sf, spans, 10, wall.Nanoseconds()); err != nil {
		sf.Close()
		return err
	}
	if len(joules) > 0 {
		fmt.Fprintf(sf, "\nwhere the joules went (%.0f W cap, %d meter samples):\n", opt.capW, len(samples))
		obs.WriteJoulesTable(sf, joules)
	}
	// Footer: span loss must be visible in the artifact, not only on
	// stderr — a truncated summary otherwise reads as a complete one.
	fmt.Fprintf(sf, "\nspans: %d recorded, %d dropped (bounded tracks)\n", len(spans), tr.Dropped())
	if err := sf.Close(); err != nil {
		return err
	}
	fmt.Printf("profiled %d in situ cycles (%d governed segments) under a %.0f W cap in %.3fs\n",
		opt.cycles, len(results), opt.capW, wall.Seconds())
	fmt.Println("wrote", summaryPath)
	if err := telemetry.WriteSummary(os.Stdout, spans, 5, wall.Nanoseconds()); err != nil {
		return err
	}
	if len(joules) > 0 {
		fmt.Println("\nwhere the joules went:")
		obs.WriteJoulesTable(os.Stdout, joules)
	}
	return nil
}

// writeTraceFile exports the tracer's spans as Chrome trace-event JSON
// and re-validates the written bytes, so a corrupt export fails the
// command instead of failing later inside Perfetto.
func writeTraceFile(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("trace export invalid: %w", err)
	}
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "vizpower: trace buffers overflowed, %d spans dropped\n", d)
	}
	fmt.Printf("wrote %s (%d trace events, valid JSON; load at https://ui.perfetto.dev)\n", path, n)
	return nil
}

// allocateCmd splits a node budget between the simulation and each
// visualization algorithm, demonstrating the paper's proposed runtime.
func allocateCmd(c *harness.Config, opt *options) error {
	sim, err := clover.New(c.PhaseSize/2, clover.Options{})
	if err != nil {
		return err
	}
	pipe, err := core.NewPipeline(sim, []viz.Filter{c.Filters()[0]}, 10, c.Pool, c.Spec)
	if err != nil {
		return err
	}
	cr, err := pipe.RunCycle()
	if err != nil {
		return err
	}
	fmt.Printf("budget %.0f W split between the simulation and each visualization algorithm\n", opt.budget)
	fmt.Printf("%-22s %10s %10s %12s %10s  %s\n", "Algorithm", "sim (W)", "viz (W)", "speedup", "class", "")
	g, err := c.Dataset(c.PhaseSize)
	if err != nil {
		return err
	}
	for _, f := range c.Filters() {
		ex := viz.NewExec(c.Pool)
		res, err := f.Run(g, ex)
		if err != nil {
			return err
		}
		vizExec := cpu.Analyze(c.Spec, res.Profile, 0)
		a, err := core.AllocateBudget(cr.SimExec, vizExec, opt.budget)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %10.0f %10.0f %11.2fx %10s\n",
			f.Name(), a.SimWatts, a.VizWatts, a.Speedup, a.VizClass)
	}
	return nil
}

// allCmd regenerates every artifact into the output directory.
func allCmd(c *harness.Config, opt *options) error {
	if err := os.MkdirAll(opt.out, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		path := filepath.Join(opt.out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	// One bad cell must cost its own artifacts, not the whole campaign:
	// each phase degrades independently and the failures land in the
	// report (and failures.txt) instead of aborting the sweep.
	skip := func(artifact string, err error) {
		fmt.Fprintf(os.Stderr, "vizpower: %s skipped: %v\n", artifact, err)
	}
	run1, err := c.Phase1()
	if err != nil {
		skip("table1", err)
	} else if err := write("table1.txt", harness.Table1(run1, c.Caps)); err != nil {
		return err
	}
	runs2, err := c.Phase2()
	if err != nil {
		return err
	}
	if err := write("table2.txt", harness.Table2(runs2, c.Caps)); err != nil {
		return err
	}
	if err := write("classification.txt", harness.DemandTable(runs2)); err != nil {
		return err
	}
	sizes := c.SortedSizes()
	runs3, err := c.RunAll(sizes[len(sizes)-1])
	if err != nil {
		skip("table3", err)
	} else if err := write("table3.txt", harness.Table3(runs3, c.Caps)); err != nil {
		return err
	}
	type figure struct {
		name, title, ylabel string
		series              []harness.Series
	}
	figs := []figure{
		{"fig2a", "Figure 2a — Effective Frequency", "Effective Frequency (GHz)", harness.Fig2a(runs2, c.Caps)},
		{"fig2b", "Figure 2b — Instructions Per Cycle", "IPC", harness.Fig2b(runs2, c.Caps)},
		{"fig2c", "Figure 2c — LLC Miss Rate", "Last Level Cache Miss Rate", harness.Fig2c(runs2, c.Caps)},
		{"fig3", "Figure 3 — Cell-Centered Throughput", "Elements (M)/sec", harness.Fig3(runs2, c.Caps)},
	}
	for _, fig := range []struct{ name, alg string }{
		{"fig4", "Slice"}, {"fig5", "Volume Rendering"}, {"fig6", "Particle Advection"},
	} {
		bySize, err := c.RunsBySize(fig.alg)
		if err != nil {
			skip(fig.name, err)
			continue
		}
		figs = append(figs, figure{
			fig.name,
			fmt.Sprintf("Figure %s — %s IPC by Data Set Size", strings.TrimPrefix(fig.name, "fig"), fig.alg),
			"IPC",
			harness.FigIPCBySize(bySize, sizes, c.Caps),
		})
	}
	for _, fig := range figs {
		if err := write(fig.name+".csv", harness.SeriesCSV("cap_watts", fig.series)); err != nil {
			return err
		}
		var svg strings.Builder
		if err := harness.WriteSVGFigure(&svg, fig.title, fig.ylabel, fig.series); err != nil {
			return err
		}
		if err := write(fig.name+".svg", svg.String()); err != nil {
			return err
		}
	}
	paths, err := c.RenderFig1(c.PhaseSize, opt.figSize, filepath.Join(opt.out, "fig1"))
	if err != nil {
		return err
	}
	for _, p := range paths {
		fmt.Println("wrote", p)
	}
	// The distributed-advection rank sweep feeds its own report section;
	// a wedged fabric degrades like any other phase.
	if _, err := c.AdvectScaling(c.PhaseSize); err != nil {
		skip("advect scaling", err)
	}
	// The backend comparison runs contour and threshold under both the
	// traditional and DPP formulations, feeding the report's "DPP
	// backend" section (per-backend classification).
	if pairs, err := c.BackendCompare(c.PhaseSize); err != nil {
		skip("backend compare", err)
	} else if err := write("backends.txt", harness.BackendTable(pairs)); err != nil {
		return err
	}
	// -govern adds the closed-loop capping sweep: governor vs static
	// plan vs uniform cap at the phase size, cached into the report's
	// "Closed-loop capping" section.
	if opt.govern {
		cycles := opt.cycles
		if cycles < 6 {
			cycles = 6
		}
		if res, err := c.GovernorCompare(c.PhaseSize, governBudgets, cycles); err != nil {
			skip("govern sweep", err)
		} else if err := write("govern.txt", harness.GovernTable(res)); err != nil {
			return err
		}
	}
	// The self-contained campaign report: tables, classification, and
	// executable claim checks in one document. The claims need the full
	// Phase 2 set, so a degraded sweep skips them rather than aborting.
	claims, err := c.CheckClaims()
	if err != nil {
		if len(c.Failures()) == 0 {
			return err
		}
		skip("claim checks", err)
		claims = nil
	}
	var report strings.Builder
	if err := c.WriteReport(&report, runs2, runs3, claims); err != nil {
		return err
	}
	if err := write("report.md", report.String()); err != nil {
		return err
	}
	if err := write("energy.txt", harness.EnergyTable(runs2, c.Caps)); err != nil {
		return err
	}
	if fs := c.Failures(); len(fs) > 0 {
		if err := write("failures.txt", harness.FailureReport(fs)); err != nil {
			return err
		}
	}
	return nil
}

// exportCmd runs every filter at the phase size and writes the outputs as
// legacy VTK files (openable in ParaView/VisIt), plus the data set itself.
func exportCmd(c *harness.Config, opt *options) error {
	if err := os.MkdirAll(opt.out, 0o755); err != nil {
		return err
	}
	g, err := c.Dataset(c.PhaseSize)
	if err != nil {
		return err
	}
	writeVTK := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(opt.out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	if err := writeVTK("dataset.vtk", func(w io.Writer) error {
		return vtkio.WriteUniformGrid(w, g, "CloverLeaf-like energy field", "energy")
	}); err != nil {
		return err
	}
	for _, f := range c.ExtendedFilters() {
		ex := viz.NewExec(c.Pool)
		res, err := f.Run(g, ex)
		if err != nil {
			return err
		}
		slug := strings.ReplaceAll(strings.ToLower(f.Name()), " ", "_")
		switch {
		case res.Tris != nil:
			err = writeVTK(slug+".vtk", func(w io.Writer) error {
				return vtkio.WriteTriMesh(w, res.Tris, f.Name()+" output", "energy")
			})
		case res.Cells != nil:
			err = writeVTK(slug+".vtk", func(w io.Writer) error {
				return vtkio.WriteUnstructured(w, res.Cells, f.Name()+" output", "energy")
			})
		case res.Lines != nil:
			err = writeVTK(slug+".vtk", func(w io.Writer) error {
				return vtkio.WriteLineSet(w, res.Lines, f.Name()+" output", "speed")
			})
		default:
			fmt.Printf("skipped %s (image/reduction output)\n", f.Name())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vizpower <command> [flags]
commands: table1 table2 table3 fig1 fig2a fig2b fig2c fig3 fig4 fig5 fig6
          classify [-extended] arch [-alg NAME] export trace allocate
          advect [-ranks LIST -adaptive] profile [-cap W -cycles N -out DIR -ranks LIST]
          overprovision [-alg NAME -budget W] feedback [-cap W]
          govern [-cycles N -decisions] serve [-addr HOST:PORT -budget W -queue N -out DIR -govern] all
run "vizpower <command> -h" for flags; add -quick for a fast demonstration
global: -trace FILE writes a Perfetto-loadable execution trace of any
command; -cpuprofile FILE writes a pprof CPU profile; -backend trad|dpp
selects the contour/threshold formulation (verify, profile, classify,
all; "all" additionally compares both backends in report.md); -govern
adds the closed-loop governor sweep to "all" and calibrates "serve"
admission from a governed run`)
}
