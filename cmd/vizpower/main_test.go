package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing command accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"table1", "-sizes", "x,y"}); err == nil {
		t.Error("bad -sizes accepted")
	}
	if err := run([]string{"arch", "-quick", "-alg", "Nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"cinema", "-quick", "-alg", "Contour"}); err == nil {
		t.Error("cinema with a non-rendering algorithm accepted")
	}
	if err := run([]string{"advect", "-quick", "-ranks", "2,zero"}); err == nil {
		t.Error("bad -ranks accepted")
	}
	if err := run([]string{"advect", "-quick", "-ranks", "0"}); err == nil {
		t.Error("-ranks 0 accepted")
	}
}

// TestRunAdvectCommand: the distributed advection sweep runs at
// demonstration scale in both integrator modes without a mismatch (a
// non-identical cell is a command error).
func TestRunAdvectCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	for _, args := range [][]string{
		{"advect", "-quick", "-ranks", "1,2,4", "-particles", "64", "-steps", "80"},
		{"advect", "-quick", "-ranks", "2", "-adaptive", "-particles", "64", "-steps", "80"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunQuickCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	// Fast text commands at demonstration scale.
	for _, args := range [][]string{
		{"table1", "-quick"},
		{"energy", "-quick"},
		{"verify", "-quick"}, // class claims SKIP at this scale, others must pass
		{"arch", "-quick", "-alg", "Threshold"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunExportWritesVTK(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	if err := run([]string{"export", "-quick", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dataset.vtk", "contour.vtk", "threshold.vtk", "particle_advection.vtk"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}

func TestRunProfileWritesValidTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	if err := run([]string{"profile", "-quick", "-cap", "80", "-cycles", "2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("profile wrote an invalid trace: %v", err)
	}
	// At least the metadata events plus spans for 2 cycles x 8 filters.
	if n < 20 {
		t.Errorf("trace has only %d events", n)
	}
	sum, err := os.ReadFile(filepath.Join(dir, "summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stage summary", "Contour", "par.For"} {
		if !strings.Contains(string(sum), want) {
			t.Errorf("summary.txt missing %q", want)
		}
	}
}

func TestRunGlobalTraceFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "t1.json")
	prof := filepath.Join(dir, "t1.pprof")
	if err := run([]string{"table1", "-quick", "-trace", trace, "-cpuprofile", prof}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Errorf("-trace wrote an invalid trace: %v", err)
	}
	if st, err := os.Stat(prof); err != nil || st.Size() == 0 {
		t.Errorf("-cpuprofile wrote nothing: %v", err)
	}
}

func TestRunCinemaWritesDatabase(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	if err := run([]string{"cinema", "-quick", "-alg", "Ray Tracing", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Errorf("missing index.json: %v", err)
	}
}
