// Serving-daemon benchmarks (recorded in BENCH_PR7.json): frame latency
// through the derived-structure cache cold vs warm, and admitted request
// throughput with the power-budget admission queue on vs off.
package repro_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/harness"
	"repro/internal/par"
	"repro/internal/serve"
)

// benchServeConfig returns a daemon-sized study configuration over the
// shared bench grid.
func benchServeConfig(b *testing.B) *harness.Config {
	n := benchSize()
	c := (&harness.Config{
		Pool:  par.Default(),
		Sizes: []int{n}, PhaseSize: n,
		Images: 8, ImageSize: 64,
		MaxSimSize: n, SimTime: 0.05,
	}).Defaults()
	c.Preload(n, benchGrid(b, n))
	return c
}

func benchGet(b *testing.B, ts *httptest.Server, path string) (*http.Response, []byte) {
	b.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		b.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	return resp, body
}

// BenchmarkServeRenderCold measures /render with a fresh daemon per
// iteration: every frame pays everything the cache amortizes away —
// materializing the dataset (the hydro proxy run) plus the renderer
// build — before it can sample a single ray.
func BenchmarkServeRenderCold(b *testing.B) {
	n := benchSize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := (&harness.Config{
			Pool:  par.Default(),
			Sizes: []int{n}, PhaseSize: n,
			Images: 8, ImageSize: 64,
			MaxSimSize: n, SimTime: 0.05,
		}).Defaults()
		s := serve.New(serve.Options{Config: cfg, CinemaDir: b.TempDir()})
		ts := httptest.NewServer(s.Handler())
		b.StartTimer()
		resp, _ := benchGet(b, ts, "/render?alg=volren&frame=2")
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if resp.Header.Get("X-Serve-Cache") != "miss" {
			b.Fatal("cold iteration hit the cache")
		}
		b.StopTimer()
		ts.Close()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkServeRenderWarm measures /render against one long-lived
// daemon: after the first request every frame reuses the cached
// structures — the steady state a daemon exists for.
func BenchmarkServeRenderWarm(b *testing.B) {
	cfg := benchServeConfig(b)
	s := serve.New(serve.Options{Config: cfg, CinemaDir: b.TempDir()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, _ := benchGet(b, ts, "/render?alg=volren&frame=2"); resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d", resp.StatusCode)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _ := benchGet(b, ts, "/render?alg=volren&frame=2")
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// serveThroughput drives concurrent mixed-class clients at a warm daemon
// and reports admitted requests/s plus the measured average admitted
// power from the admission integral.
func serveThroughput(b *testing.B, budget float64) {
	cfg := benchServeConfig(b)
	s := serve.New(serve.Options{Config: cfg, BudgetWatts: budget, QueueDepth: 256, CinemaDir: b.TempDir()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Warm both structures so throughput measures serving, not building.
	for _, p := range []string{"/render?alg=volren", "/render?alg=raytrace"} {
		if resp, _ := benchGet(b, ts, p); resp.StatusCode != http.StatusOK {
			b.Fatalf("warmup status %d", resp.StatusCode)
		}
	}
	const clients = 8
	var served atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	work := make(chan int)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range work {
				// Alternate the sensitive and opportunity class.
				alg := "volren"
				if (c+i)%2 == 0 {
					alg = "raytrace"
				}
				resp, _ := benchGet(b, ts, fmt.Sprintf("/render?alg=%s&frame=%d", alg, i%8))
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				}
			}
		}(c)
	}
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	b.StopTimer()
	st := s.Admission().Stats()
	b.ReportMetric(float64(served.Load())/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(st.AvgWatts, "avgW")
	b.ReportMetric(st.PeakWatts, "peakW")
	if budget > 0 && st.AvgWatts > budget+1e-9 {
		b.Fatalf("average admitted power %.1f W exceeds the %.0f W budget", st.AvgWatts, budget)
	}
}

// BenchmarkServeThroughputCapped runs the mixed-class client load under
// a 130 W node budget.
func BenchmarkServeThroughputCapped(b *testing.B) { serveThroughput(b, 130) }

// BenchmarkServeThroughputUncapped is the same load with admission
// control off.
func BenchmarkServeThroughputUncapped(b *testing.B) { serveThroughput(b, 0) }
