# Build/test/benchmark wiring for the vizpower reproduction.
#
#   make check   - vet + build + full test suite + short race pass
#   make race    - the short -race run on the runtime, mesh layer, rank
#                  fabric, and two kernels (the packages with real
#                  cross-goroutine traffic), plus the harness
#                  failure-injection paths
#   make bench   - the dispatch + kernel benchmarks recorded in BENCH_PR1.json
#   make bench-render - the render hot-path benchmarks recorded in
#                  BENCH_PR3.json (volren marcher, traced frame, BVH
#                  build, cinema encode queue), with -benchmem
#   make bench-advect - the advection hot-path benchmarks recorded in
#                  BENCH_PR4.json (fused-sampler SoA integrator vs the
#                  reference, fixed + adaptive, 32^3/64^3/128^3, plus
#                  the scratch-leased clover sweep), with -benchmem
#   make bench-advect-dist - the distributed parallelize-over-data
#                  advection benchmarks recorded in BENCH_PR6.json
#                  (reference/fast single-rank oracles vs dist.Advect at
#                  1/2/4/8 ranks on a migration-heavy field), -benchmem
#   make bench-serve - the daemon benchmarks recorded in BENCH_PR7.json
#                  (cold vs warm frame latency through the derived-
#                  structure cache; admitted request throughput with the
#                  power-budget admission queue on vs off), -benchmem
#   make bench-dpp - the data-parallel-primitive backend benchmarks
#                  recorded in BENCH_PR8.json (traditional vs DPP
#                  contour/threshold at 32^3/64^3/128^3, plus the scan
#                  primitive's steady-state allocation check), -benchmem
#   make bench-govern - the closed-loop governor benchmarks recorded in
#                  BENCH_PR9.json (governed vs static phase plan vs
#                  uniform cap per budget, with the equal-energy replay
#                  columns), -benchmem
#   make bench-obs - the metrics-plane benchmarks recorded in
#                  BENCH_PR10.json (counter/sharded/histogram record
#                  cost, full-registry scrape, attribution join, and
#                  the instrumented-vs-bare par.For dispatch check),
#                  -benchmem
#   make govern  - run the vizpower govern subcommand at demonstration
#                  scale (closed-loop vs static vs uniform sweep table)
#   make profile - run the vizpower profile subcommand at demonstration
#                  scale into out/profile (trace.json + summary.txt),
#                  validating the exported JSON
#   make serve   - run the rendering daemon at demonstration scale on
#                  localhost:8080 with a 130 W budget
#
# Every test target carries -timeout 120s: the fabric tests deliberately
# create would-be deadlocks and rely on cancellation to unblock, so a
# hang must fail fast instead of stalling CI.

GO ?= go

# Packages whose tests exercise multi-worker pools and shared buffers.
RACE_PKGS = ./internal/par ./internal/mesh ./internal/dpp ./internal/viz/... ./internal/cinema ./internal/dist ./internal/telemetry ./internal/serve ./internal/power ./internal/obs

.PHONY: check vet build test race bench bench-render bench-advect bench-advect-dist bench-serve bench-dpp bench-govern bench-obs govern profile serve

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: vet
	$(GO) test -timeout 120s ./...

race:
	$(GO) test -race -count=1 -timeout 120s $(RACE_PKGS)
	$(GO) test -race -count=1 -timeout 120s ./internal/viz/advect -run 'Compact|Golden|Seed'
	$(GO) test -race -count=1 -timeout 120s ./internal/harness -run 'Failure|Retry|Partial|Advect'

bench:
	$(GO) test -timeout 120s ./internal/par -run xxx -bench 'ParFor|ReduceSum' -benchtime=2s
	$(GO) test -timeout 120s . -run xxx -bench 'BenchmarkKernel(Contour|SphericalClip|Isovolume|Threshold|Slice)' -benchtime 5x
	$(GO) test -timeout 120s . -run xxx -bench BenchmarkAblationWeld -benchtime 10x

bench-render:
	$(GO) test -timeout 600s . -run xxx -benchmem \
		-bench 'BenchmarkVolrenFrame|BenchmarkRayTraceFrame|BenchmarkBVHBuildPaths|BenchmarkCinemaOrbitSink' \
		-benchtime 5x

bench-advect:
	$(GO) test -timeout 600s . -run xxx -benchmem \
		-bench 'BenchmarkAdvectPaths|BenchmarkCloverSweep' \
		-benchtime 3x

bench-advect-dist:
	$(GO) test -timeout 600s . -run xxx -benchmem \
		-bench 'BenchmarkAdvectDist' \
		-benchtime 3x

bench-serve:
	$(GO) test -timeout 600s . -run xxx -benchmem \
		-bench 'BenchmarkServe' \
		-benchtime 5x

bench-dpp:
	$(GO) test -timeout 600s . -run xxx -benchmem \
		-bench 'BenchmarkDPP(Contour|Threshold)' \
		-benchtime 3x
	$(GO) test -timeout 600s . -run xxx -benchmem \
		-bench 'BenchmarkDPPScan' \
		-benchtime 100x

bench-govern:
	$(GO) test -timeout 600s . -run xxx -benchmem \
		-bench 'BenchmarkGovernCompare' \
		-benchtime 3x

bench-obs:
	$(GO) test -timeout 600s ./internal/obs -run xxx -benchmem \
		-bench 'BenchmarkObs' -benchtime=2s
	$(GO) test -timeout 600s . -run xxx -benchmem \
		-bench 'BenchmarkObs' -benchtime=2s
	$(GO) test -timeout 600s ./internal/par -run xxx -benchmem \
		-bench 'BenchmarkParForDispatch$$' -benchtime=2s

# Run the closed-loop governor sweep at demonstration scale.
govern:
	$(GO) run ./cmd/vizpower govern -quick -cycles 8

# Run the telemetry subcommand at demonstration scale and confirm the
# exported trace parses as Chrome trace-event JSON (the CLI re-validates
# the written bytes and fails the command otherwise).
profile:
	$(GO) run ./cmd/vizpower profile -quick -cap 80 -cycles 3 -out out/profile

# Run the daemon at demonstration scale (ctrl-C drains in-flight
# requests and finalizes the cinema manifests before exiting).
serve:
	$(GO) run ./cmd/vizpower serve -quick -addr localhost:8080 -budget 130 -out out
