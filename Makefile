# Build/test/benchmark wiring for the vizpower reproduction.
#
#   make check   - vet + build + full test suite + short race pass
#   make race    - the short -race run on the runtime, mesh layer, and two
#                  kernels (the packages with real cross-goroutine traffic)
#   make bench   - the dispatch + kernel benchmarks recorded in BENCH_PR1.json

GO ?= go

# Packages whose tests exercise multi-worker pools and shared buffers.
RACE_PKGS = ./internal/par ./internal/mesh ./internal/viz/clip ./internal/viz/threshold

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

bench:
	$(GO) test ./internal/par -run xxx -bench 'ParFor|ReduceSum' -benchtime=2s
	$(GO) test . -run xxx -bench 'BenchmarkKernel(Contour|SphericalClip|Isovolume|Threshold|Slice)' -benchtime 5x
	$(GO) test . -run xxx -bench BenchmarkAblationWeld -benchtime 10x
